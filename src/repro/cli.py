"""Command-line interface: ``rcast-repro`` / ``python -m repro.cli``.

Subcommands:

* ``run``      — one simulation, printing the run summary; ``--trace-out``
  streams a structured JSONL trace (``--trace-categories`` filters it) and
  ``--json-out`` exports metrics + run manifest (+ ``--sample-interval``
  timeline);
* ``profile``  — run one simulation under the event-loop profiler and
  print per-callback event counts, wall-time shares, and events/sec;
* ``bench``    — hot-path benchmark harness: stage microbenchmarks plus
  fig7-workload events/sec, written to ``BENCH_hotpath.json``; with
  ``--baseline`` it exits non-zero on a >30% events/sec regression;
* ``table1``   — the scheme-behaviour comparison (Table 1);
* ``fig5`` .. ``fig9`` — regenerate one figure of the paper;
* ``ablation`` — the extension studies (factors / tap / rreq);
* ``resilience`` — scheme degradation under injected crashes and loss;
* ``adaptive`` — adaptive receiver-side P_R policies (measured-degree /
  energy-budget / bandit) vs the paper's fixed 1/n; ``run``, ``sweep``,
  ``fig7``, ``lifetime`` and ``resilience`` take ``--overhearing-policy``
  to apply one policy directly;
* ``spans``    — assemble packet flight-recorder spans (originate ->
  route discovery -> per-hop MAC attempts -> delivery/drop) from a
  recorded JSONL trace, as a sortable table and/or JSON;
* ``lint``     — rcast-lint determinism & protocol-invariant checks.

``run`` grew streaming-telemetry knobs: ``--streaming`` folds
fixed-memory distribution aggregates into the metrics, ``--live``
renders an in-place progress line, ``--telemetry-out`` streams progress
records as JSONL, and ``--trace-rotate`` size-rotates (optionally
gzipped) trace output.  ``sweep`` shares ``--live``/``--telemetry-out``
at replication granularity.

``run --faults plan.json`` injects a deterministic fault plan (see
:mod:`repro.faults.plan` for the JSON format).

``--scale {smoke,bench,paper}`` selects the fidelity/time trade-off.
``--workers N`` shards replications across N worker processes (0 = all
cores; results are bit-identical for any worker count); ``--json-out``
writes the result object as machine-readable JSON.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.adaptive import OVERHEARING_POLICIES
from repro.experiments import (
    ablation,
    adaptive_study,
    aodv_study,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    lifetime,
    resilience,
    sensitivity,
    span_study,
    staleness_study,
    sync_study,
    table1,
)
from repro.experiments.scenarios import (
    BENCH_SCALE,
    PAPER_SCALE,
    SMOKE_SCALE,
    ExperimentScale,
)
from repro.network import SCHEMES, SimulationConfig

if TYPE_CHECKING:
    from repro.experiments.parallel import ProgressEvent

_SCALES = {"smoke": SMOKE_SCALE, "bench": BENCH_SCALE, "paper": PAPER_SCALE}

#: study name -> (run function, result formatter).  The run functions share
#: the (scale, seed=, progress=, workers=) calling convention but return
#: study-specific result objects, hence Callable[..., Any].
_FIGURES: Dict[str, Tuple[Callable[..., Any], Callable[..., str]]] = {
    "table1": (table1.run, table1.format_result),
    "fig5": (fig5.run, fig5.format_result),
    "fig6": (fig6.run, fig6.format_result),
    "fig7": (fig7.run, fig7.format_result),
    "fig8": (fig8.run, fig8.format_result),
    "fig9": (fig9.run, fig9.format_result),
    "lifetime": (lifetime.run, lifetime.format_result),
    "sensitivity": (sensitivity.run, sensitivity.format_result),
    "aodv": (aodv_study.run, aodv_study.format_result),
    "span": (span_study.run, span_study.format_result),
    "sync": (sync_study.run, sync_study.format_result),
    "staleness": (staleness_study.run, staleness_study.format_result),
    "resilience": (resilience.run, resilience.format_result),
    "adaptive": (adaptive_study.run, adaptive_study.format_result),
}

#: figure subcommands whose run() accepts an ``overhearing_policy`` kwarg
#: (the adaptive study sweeps every policy itself, so it is not here).
_POLICY_AWARE = ("fig7", "lifetime", "resilience")

_ABLATIONS: Dict[str, Callable[..., Any]] = {
    "factors": ablation.run_factors,
    "tap": ablation.run_tap,
    "rreq": ablation.run_rreq,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rcast-repro",
        description="Rcast (ICDCS 2005) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one simulation")
    _add_sim_args(run_p)
    run_p.add_argument("--faults", dest="faults", default=None,
                       help="JSON fault-plan file to inject "
                            "(crashes, packet loss, noise windows)")
    run_p.add_argument("--trace-out", dest="trace_out", default=None,
                       help="write a structured JSONL trace to this file "
                            "(a .gz suffix compresses transparently)")
    run_p.add_argument("--trace-categories", dest="trace_categories",
                       default=None,
                       help="comma-separated trace categories to keep "
                            "(e.g. atim,psm; default: all)")
    run_p.add_argument("--trace-rotate", dest="trace_rotate", type=int,
                       default=None, metavar="BYTES",
                       help="rotate the trace file every BYTES uncompressed "
                            "bytes (numbered parts next to --trace-out)")
    run_p.add_argument("--streaming", action="store_true",
                       help="fold streaming distribution aggregates "
                            "(delay / energy-per-bit histograms, quantiles, "
                            "reservoir) into the run metrics")
    run_p.add_argument("--live", action="store_true",
                       help="render an in-place live progress line "
                            "(virtual time, ev/s, ETA, fault counts)")
    run_p.add_argument("--telemetry-out", dest="telemetry_out", default=None,
                       help="stream live telemetry records to this JSONL "
                            "file (machine-readable --live feed)")
    run_p.add_argument("--sample-interval", dest="sample_interval",
                       type=float, default=0.0,
                       help="record a timeline snapshot every N sim seconds "
                            "(0 = off; exported via --json-out)")
    run_p.add_argument("--json-out", dest="json_out", default=None,
                       help="write metrics + run manifest (+ timeline) JSON")
    run_p.add_argument("--sanitize", action="store_true",
                       help="run under the determinism sanitizer (DSan): "
                            "per-stream draw ledgers, tie-key detector, "
                            "hot-path order canaries")
    run_p.add_argument("--sanitize-compare", dest="sanitize_compare",
                       action="store_true",
                       help="run the seed twice under the sanitizer and "
                            "diff the two ledgers (implies --sanitize; "
                            "exit 1 on divergence)")
    run_p.add_argument("--sanitize-out", dest="sanitize_out", default=None,
                       help="write the sanitizer JSON report to this file")

    profile_p = sub.add_parser(
        "profile", help="profile the event loop of one simulation"
    )
    _add_sim_args(profile_p)
    profile_p.add_argument("--top", type=int, default=10,
                           help="callback categories to show (default 10)")
    profile_p.add_argument("--json-out", dest="json_out", default=None,
                           help="write the profile report as JSON")

    bench_p = sub.add_parser(
        "bench", help="hot-path benchmark: stage microbenchmarks + "
                      "fig7-workload events/sec (perf-regression harness)"
    )
    bench_p.add_argument("--scale", choices=("smoke", "bench", "large"),
                         default="bench")
    bench_p.add_argument("--repeat", type=int, default=3,
                         help="runs per stage; best wall time wins "
                              "(default 3)")
    bench_p.add_argument("--top", type=int, default=8,
                         help="profiler callbacks to record (default 8)")
    bench_p.add_argument("--workload-only", dest="workload_only",
                         action="store_true",
                         help="skip microbenchmark stages, the profiled "
                              "run and the tracemalloc memory stage "
                              "(CI shape for --scale large)")
    bench_p.add_argument("--max-wall-time", dest="max_wall_time",
                         type=float, default=None,
                         help="fail when the uninstrumented workload "
                              "exceeds this many wall seconds (hang/"
                              "regression backstop; generous values "
                              "only — runners vary)")
    bench_p.add_argument("--json-out", dest="json_out",
                         default="BENCH_hotpath.json",
                         help="result path (default BENCH_hotpath.json)")
    bench_p.add_argument("--baseline", default=None,
                         help="baseline JSON to gate against "
                              "(exit 1 on regression)")
    bench_p.add_argument("--max-regression", dest="max_regression",
                         type=float, default=0.30,
                         help="tolerated events/sec drop vs baseline "
                              "(default 0.30)")
    bench_p.add_argument("--max-memory-regression",
                         dest="max_memory_regression",
                         type=float, default=0.50,
                         help="tolerated streaming peak-heap growth vs "
                              "baseline (default 0.50)")

    for name in _FIGURES:
        fig_p = sub.add_parser(name, help=f"reproduce {name}")
        fig_p.add_argument("--scale", choices=_SCALES, default="bench")
        fig_p.add_argument("--seed", type=int, default=1)
        if name in _POLICY_AWARE:
            fig_p.add_argument("--overhearing-policy",
                               dest="overhearing_policy",
                               choices=OVERHEARING_POLICIES, default="fixed",
                               help="receiver-side P_R policy for the rcast "
                                    "column (default fixed = the paper's 1/n)")
        _add_parallel_args(fig_p)

    abl_p = sub.add_parser("ablation", help="run an ablation study")
    abl_p.add_argument("study", choices=_ABLATIONS)
    abl_p.add_argument("--scale", choices=_SCALES, default="bench")
    abl_p.add_argument("--seed", type=int, default=1)
    _add_parallel_args(abl_p)

    sweep_p = sub.add_parser(
        "sweep", help="custom (scheme x rate x scenario) sweep with export"
    )
    sweep_p.add_argument("--schemes", default="ieee80211,odpm,rcast",
                         help="comma-separated scheme keys")
    sweep_p.add_argument("--rates", default=None,
                         help="comma-separated packet rates (default: scale's)")
    sweep_p.add_argument("--scenarios", default="mobile,static",
                         help="comma-separated from {mobile,static}")
    sweep_p.add_argument("--scale", choices=_SCALES, default="bench")
    sweep_p.add_argument("--seed", type=int, default=1)
    sweep_p.add_argument("--overhearing-policy", dest="overhearing_policy",
                         choices=OVERHEARING_POLICIES, default="fixed",
                         help="receiver-side P_R policy applied to every "
                              "cell (default fixed = the paper's 1/n)")
    sweep_p.add_argument("--json", "--json-out", dest="json_path",
                         default=None,
                         help="write the full sweep (incl. vectors) as JSON")
    sweep_p.add_argument("--csv", dest="csv_path", default=None,
                         help="write the scalar metrics as CSV")
    sweep_p.add_argument("--workers", type=_workers_type, default=1,
                         help="worker processes (0 = all cores; default 1)")
    sweep_p.add_argument("--live", action="store_true",
                         help="render an in-place replication progress line "
                              "(ev/s, ETA, worker utilization, fault counts)")
    sweep_p.add_argument("--telemetry-out", dest="telemetry_out",
                         default=None,
                         help="stream sweep progress events to this JSONL "
                              "file (machine-readable --live feed)")

    spans_p = sub.add_parser(
        "spans", help="assemble packet flight-recorder spans from a "
                      "JSONL trace (originate -> discovery -> per-hop MAC "
                      "attempts -> delivery/drop)"
    )
    spans_p.add_argument("traces", nargs="+",
                         help="trace JSONL file(s); .gz and rotated parts "
                              "are read transparently")
    spans_p.add_argument("--sort", default="uid",
                         help="table sort key: uid|latency|energy|"
                              "attempts|hops (default uid)")
    spans_p.add_argument("--top", type=int, default=20,
                         help="rows to print (default 20; 0 = all)")
    spans_p.add_argument("--status", choices=("all", "delivered", "dropped"),
                         default="all",
                         help="restrict the table to one outcome")
    spans_p.add_argument("--json-out", dest="json_out", default=None,
                         help="write every flight (plus summary) as JSON")

    lint_p = sub.add_parser(
        "lint",
        help="run rcast-lint (determinism & protocol-invariant checks)",
    )
    from repro.analysis.lint.runner import add_lint_arguments

    add_lint_arguments(lint_p)
    return parser


def _workers_type(value: str) -> int:
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {value!r}")
    if workers < 0:
        raise argparse.ArgumentTypeError("must be >= 0 (0 = all cores)")
    return workers


def _add_parallel_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=_workers_type, default=1,
                        help="worker processes (0 = all cores; default 1)")
    parser.add_argument("--json-out", dest="json_out", default=None,
                        help="write the result object as JSON")


def _add_sim_args(parser: argparse.ArgumentParser) -> None:
    """Single-simulation arguments shared by ``run`` and ``profile``."""
    parser.add_argument("--scheme", choices=SCHEMES, default="rcast")
    parser.add_argument("--nodes", type=int, default=100)
    parser.add_argument("--rate", type=float, default=0.4)
    parser.add_argument("--sim-time", type=float, default=120.0)
    parser.add_argument("--connections", type=int, default=20)
    parser.add_argument("--pause", type=float, default=600.0)
    parser.add_argument("--speed", type=float, default=20.0)
    parser.add_argument("--static", action="store_true")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--overhearing-policy", dest="overhearing_policy",
                        choices=OVERHEARING_POLICIES, default="fixed",
                        help="receiver-side P_R policy: fixed (the paper's "
                             "1/n) or an adaptive policy "
                             "(degree/energy/bandit)")
    parser.add_argument("--arena-w", dest="arena_w", type=float, default=None,
                        metavar="METERS",
                        help="arena width (default: the paper's 1500 m; "
                             "scale the area with --nodes to hold the "
                             "paper's density at 1k+ nodes)")
    parser.add_argument("--arena-h", dest="arena_h", type=float, default=None,
                        metavar="METERS",
                        help="arena height (default: the paper's 300 m)")


def _config_from_args(args: argparse.Namespace) -> SimulationConfig:
    arena: Dict[str, float] = {}
    if args.arena_w is not None:
        arena["arena_w"] = args.arena_w
    if args.arena_h is not None:
        arena["arena_h"] = args.arena_h
    return SimulationConfig(
        scheme=args.scheme,
        num_nodes=args.nodes,
        packet_rate=args.rate,
        sim_time=args.sim_time,
        num_connections=args.connections,
        mobility="static" if args.static else "waypoint",
        max_speed=args.speed,
        pause_time=args.pause,
        seed=args.seed,
        overhearing_policy=args.overhearing_policy,
        **arena,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    import json as json_module
    from pathlib import Path

    from dataclasses import replace

    from repro.errors import ConfigurationError
    from repro.faults.plan import FaultPlan
    from repro.network import Network, build_network
    from repro.obs.live import LiveRunMonitor, TelemetryWriter
    from repro.obs.manifest import RunManifest, config_hash
    from repro.obs.metrics import TimelineRecorder
    from repro.obs.sinks import FilteredSink, JsonlSink
    from repro.sim.trace import NULL_TRACE, TRACE_CATEGORIES, TraceSink

    config = _config_from_args(args)
    if args.faults:
        try:
            plan = FaultPlan.load(args.faults)
        except ConfigurationError as exc:
            raise SystemExit(f"--faults: {exc}")
        config = replace(config, faults=plan)
    if args.streaming:
        config = replace(config, streaming=True)
    # perf_counter, not time.time(): monotonic, immune to NTP clock steps.
    # This module is on the rcast-lint R002 allowlist because reporting
    # elapsed wall time to a human is the one legitimate wall-clock use —
    # it never feeds back into simulated behaviour.
    started = time.perf_counter()
    jsonl: Optional[JsonlSink] = None
    trace: TraceSink = NULL_TRACE
    if args.trace_out:
        categories = [c.strip() for c in
                      (args.trace_categories or "").split(",") if c.strip()]
        unknown = sorted(set(categories) - set(TRACE_CATEGORIES))
        if unknown:
            # Before the sink opens (and truncates) the output file.
            raise SystemExit(
                f"--trace-categories: unknown {unknown}; known categories: "
                f"{', '.join(TRACE_CATEGORIES)}"
            )
        jsonl = JsonlSink(args.trace_out, rotate_bytes=args.trace_rotate)
        trace = (FilteredSink(jsonl, categories=categories)
                 if categories else jsonl)
    recorder = (TimelineRecorder(args.sample_interval)
                if args.sample_interval > 0 else None)
    telemetry = (TelemetryWriter(args.telemetry_out)
                 if args.telemetry_out else None)
    live = (LiveRunMonitor(config.sim_time, telemetry=telemetry)
            if (args.live or telemetry is not None) else None)
    # `is not None`, not truthiness: an empty TimelineRecorder has
    # len() == 0 and would drop its own observer before the first sample.
    observers = [obs for obs in
                 (recorder.observe if recorder is not None else None,
                  live.observe if live is not None else None)
                 if obs is not None]
    sanitize = bool(args.sanitize or args.sanitize_compare
                    or args.sanitize_out)
    try:
        network = build_network(config, trace=trace)
        if observers:
            # The timeline's interval wins when both are active; the live
            # line just redraws on the same ticks (it rate-limits itself).
            period = (args.sample_interval if args.sample_interval > 0
                      else 1.0)

            def observe(net: Network) -> None:
                for obs in observers:
                    obs(net)

            metrics = network.run(observer=observe, observe_period=period,
                                  sanitize=sanitize)
        else:
            metrics = network.run(sanitize=sanitize)
    finally:
        if live is not None:
            live.finish()
        if telemetry is not None:
            telemetry.close()
        if jsonl is not None:
            jsonl.close()
    wall_time = time.perf_counter() - started
    print(metrics.describe())
    print(f"transmissions: {metrics.transmissions}")
    print(f"drops: {metrics.drop_reasons}")
    print(f"wall time: {wall_time:.1f}s")
    if jsonl is not None:
        print(f"trace: {jsonl.written} records -> {jsonl.path}")
    sanitizer_failed = False
    if sanitize:
        sanitizer_failed = _report_sanitizer(args, config, network)
    if args.json_out:
        manifest = RunManifest(
            scheme=config.scheme, seed=config.seed,
            config_hash=config_hash(config), wall_time=wall_time,
            events_processed=metrics.events_processed,
            fault_counts=metrics.fault_counts or None,
        )
        payload: Dict[str, Any] = {
            "metrics": metrics.to_dict(),
            "manifest": manifest.to_dict(),
        }
        if recorder is not None:
            payload["timeline"] = recorder.to_dict()
        Path(args.json_out).write_text(
            json_module.dumps(payload, indent=2))
        print(f"wrote {args.json_out}")
    return 1 if sanitizer_failed else 0


def _report_sanitizer(args: argparse.Namespace, config: SimulationConfig,
                      network: Any) -> bool:
    """Print/export sanitizer results; True when the run should fail.

    ``--sanitize-compare`` rebuilds the same config and runs it a second
    time under the sanitizer (no trace/observer attached — the ledgers
    and canaries are what is being compared), then diffs the two reports.
    """
    import json as json_module
    from pathlib import Path

    from repro.analysis.sanitizer import diff_reports
    from repro.network import build_network

    report = network.sanitizer_report
    assert report is not None
    total_draws = sum(int(entry["draws"])  # type: ignore[call-overload]
                      for _, entry in sorted(report.streams.items()))
    print(f"sanitizer: {len(report.streams)} streams, {total_draws} draws, "
          f"{report.tied_events} tied events, "
          f"{len(report.findings)} finding(s)")
    for finding in report.findings:
        print(f"  [{finding.kind}] t={finding.time:.6f} "
              f"n{finding.node} {finding.detail}")
    failed = bool(report.findings)
    payload: Dict[str, Any] = report.to_dict()
    if args.sanitize_compare:
        rerun = build_network(config)
        rerun.run(sanitize=True)
        second = rerun.sanitizer_report
        assert second is not None
        diffs = diff_reports(report, second)
        if diffs:
            print("sanitize-compare: LEDGERS DIVERGED")
            for line in diffs:
                print(f"  {line}")
            failed = True
        else:
            print("sanitize-compare: ledgers identical across reruns")
        failed = failed or bool(second.findings)
        payload = {"first": payload, "second": second.to_dict(),
                   "diffs": diffs}
    if args.sanitize_out:
        Path(args.sanitize_out).write_text(
            json_module.dumps(payload, indent=2, sort_keys=True))
        print(f"wrote {args.sanitize_out}")
    return failed


def _cmd_profile(args: argparse.Namespace) -> int:
    import json as json_module
    from pathlib import Path

    from repro.network import build_network
    from repro.obs.profiler import SimulationProfiler

    config = _config_from_args(args)
    profiler = SimulationProfiler()
    network = build_network(config)
    profiler.install(network.sim)
    metrics = network.run()
    report = profiler.report()
    print(metrics.describe())
    print()
    print(report.format(args.top))
    if args.json_out:
        Path(args.json_out).write_text(
            json_module.dumps(report.to_dict(args.top), indent=2))
        print(f"wrote {args.json_out}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs import bench

    result = bench.run_hotpath_bench(scale=args.scale, repeat=args.repeat,
                                     top_n=args.top,
                                     workload_only=args.workload_only)
    print(bench.format_result(result))
    print(f"wrote {bench.write_json(result, args.json_out)}")
    exit_code = 0
    if args.max_wall_time is not None:
        wall = float(result["wall_time_s"])
        if wall > args.max_wall_time:
            print(f"REGRESSION: workload wall time {wall:.1f}s breaches "
                  f"the {args.max_wall_time:.1f}s ceiling")
            exit_code = 1
        else:
            print(f"ok: workload wall time {wall:.1f}s under the "
                  f"{args.max_wall_time:.1f}s ceiling")
    if args.baseline:
        ok, message = bench.compare_to_baseline(
            result, bench.load_json(args.baseline),
            max_regression=args.max_regression,
            max_memory_regression=args.max_memory_regression)
        print(message)
        if not ok:
            exit_code = 1
    return exit_code


def _cmd_spans(args: argparse.Namespace) -> int:
    from repro.obs.spans import (
        SORT_KEYS,
        flights_to_json,
        format_flights,
        load_flights,
    )

    if args.sort not in SORT_KEYS:
        raise SystemExit(
            f"--sort: unknown key {args.sort!r}; choose from "
            f"{', '.join(SORT_KEYS)}")
    flights = load_flights(args.traces)
    if args.status != "all":
        shown = [f for f in flights if f.status == args.status]
    else:
        shown = flights
    top = args.top if args.top > 0 else None
    print(format_flights(shown, sort=args.sort, top=top))
    if args.json_out:
        print(f"wrote {flights_to_json(flights, args.json_out)}")
    return 0


def _on_event(event: "ProgressEvent") -> None:
    """Structured progress -> stderr (grid summary with utilization)."""
    if event.kind == "grid-finish" and event.stats is not None:
        stats = event.stats
        print(
            f"  .. grid done: {stats.items} runs in {stats.elapsed:.1f}s "
            f"on {stats.workers} workers "
            f"(utilization {stats.utilization * 100:.0f}%)",
            file=sys.stderr,
        )


def _cmd_sweep(args: argparse.Namespace, scale: ExperimentScale,
               progress: Callable[[str], None]) -> int:
    from repro.experiments.export import write_sweep_csv, write_sweep_json
    from repro.experiments.parallel import ProgressEvent, resolve_workers
    from repro.experiments.sweep import sweep as run_sweep
    from repro.metrics.report import format_series
    from repro.obs.live import LiveSweepMonitor, TelemetryWriter

    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    rates = ([float(r) for r in args.rates.split(",")]
             if args.rates else None)
    scenario_names = {s.strip() for s in args.scenarios.split(",")}
    unknown = scenario_names - {"mobile", "static"}
    if unknown:
        raise SystemExit(f"unknown scenarios: {sorted(unknown)}")
    scenarios = tuple(name == "mobile"
                      for name in ("mobile", "static")
                      if name in scenario_names)
    telemetry = (TelemetryWriter(args.telemetry_out)
                 if args.telemetry_out else None)
    monitor = (LiveSweepMonitor(telemetry=telemetry)
               if (args.live or telemetry is not None) else None)
    callbacks = [cb for cb in
                 (_on_event if resolve_workers(args.workers) > 1 else None,
                  monitor)
                 if cb is not None]
    on_event: Optional[Callable[[ProgressEvent], None]] = None
    if callbacks:
        def _fanout(event: ProgressEvent) -> None:
            for callback in callbacks:
                callback(event)

        on_event = _fanout
    if monitor is not None:
        # The live line replaces the per-cell progress chatter.
        progress = lambda line: None  # noqa: E731
    try:
        result = run_sweep(scale, schemes, rates=rates, scenarios=scenarios,
                           seed=args.seed, progress=progress,
                           workers=args.workers, on_event=on_event,
                           overhearing_policy=args.overhearing_policy)
    finally:
        if telemetry is not None:
            telemetry.close()
    for mobile in result.scenarios:
        label = "mobile" if mobile else "static"
        print(format_series(
            "rate [pkt/s]", list(result.rates),
            {s: result.series(s, mobile, lambda a: a.total_energy)
             for s in schemes},
            title=f"total energy [J], {label}",
        ))
        print()
    if args.json_path:
        print(f"wrote {write_sweep_json(result, args.json_path)}")
    if args.csv_path:
        print(f"wrote {write_sweep_csv(result, args.csv_path)}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "spans":
        return _cmd_spans(args)
    if args.command == "lint":
        from repro.analysis.lint.runner import run_from_args

        return run_from_args(args)
    scale: ExperimentScale = _SCALES[args.scale]
    progress = lambda line: print(f"  .. {line}", file=sys.stderr)  # noqa: E731
    if args.command == "sweep":
        return _cmd_sweep(args, scale, progress)
    if args.command == "ablation":
        result = _ABLATIONS[args.study](scale, seed=args.seed,
                                        progress=progress,
                                        workers=args.workers)
        print(ablation.format_result(result))
        _maybe_write_json(result, args)
        return 0
    run_fn, fmt_fn = _FIGURES[args.command]
    extra: Dict[str, Any] = {}
    if args.command in _POLICY_AWARE:
        extra["overhearing_policy"] = args.overhearing_policy
    result = run_fn(scale, seed=args.seed, progress=progress,
                    workers=args.workers, **extra)
    print(fmt_fn(result))
    _maybe_write_json(result, args)
    return 0


def _maybe_write_json(result: Any, args: argparse.Namespace) -> None:
    if getattr(args, "json_out", None):
        from repro.experiments.export import write_result_json

        print(f"wrote {write_result_json(result, args.json_out)}")


if __name__ == "__main__":
    sys.exit(main())
