"""Rcast: randomized overhearing for energy-efficient MANETs.

Full reproduction of Lim, Yu & Das, *"Rcast: A Randomized Communication
Scheme for Improving Energy Efficiency in MANETs"* (ICDCS 2005): a
discrete-event MANET simulator with IEEE 802.11 PSM, On-Demand Power
Management, DSR routing and the Rcast overhearing scheme.

Quickstart::

    from repro import SimulationConfig, run_simulation

    config = SimulationConfig(scheme="rcast", num_nodes=50, sim_time=100.0,
                              packet_rate=0.4, seed=7)
    metrics = run_simulation(config)
    print(metrics.describe())

See :mod:`repro.experiments` for the paper's tables and figures.
"""

from repro.core.policy import (
    NoOverhearing,
    OverhearingLevel,
    RcastPolicy,
    UnconditionalOverhearing,
)
from repro.core.rcast import RcastManager
from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.network import (
    SCHEMES,
    Network,
    SimulationConfig,
    build_network,
    run_simulation,
)
from repro.routing.dsr.config import DsrConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

__version__ = "1.0.0"

__all__ = [
    "DsrConfig",
    "MetricsCollector",
    "Network",
    "NoOverhearing",
    "OverhearingLevel",
    "RcastManager",
    "RcastPolicy",
    "RunMetrics",
    "SCHEMES",
    "SimulationConfig",
    "Simulator",
    "RngRegistry",
    "UnconditionalOverhearing",
    "build_network",
    "run_simulation",
    "__version__",
]
