"""Per-node protocol stack bundle."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.rcast import RcastManager
from repro.mac.base import MacBase
from repro.phy.radio import Radio


@dataclass
class Node:
    """One mobile node: radio + MAC + routing agent + traffic sources.

    ``dsr`` holds the node's routing agent — a
    :class:`~repro.routing.dsr.protocol.DsrProtocol` in the paper's
    configuration, or an
    :class:`~repro.routing.aodv.protocol.AodvProtocol` when the scenario
    selects the AODV baseline (both expose the same ``send_data`` /
    ``delivery_callback`` surface).
    """

    node_id: int
    radio: Radio
    mac: MacBase
    dsr: object
    rcast: Optional[RcastManager] = None
    sources: List[object] = field(default_factory=list)

    def start(self) -> None:
        """Bring the stack up (MAC beacon clock, traffic sources)."""
        self.mac.start()
        for source in self.sources:
            source.start()

    def finalize(self) -> None:
        """Close the books at the end of a run."""
        self.mac.finalize()
        self.radio.finalize()

    @property
    def energy_joules(self) -> float:
        """Energy consumed so far."""
        return self.radio.meter.energy_joules()

    @property
    def awake_time(self) -> float:
        """Seconds spent awake so far."""
        return self.radio.meter.awake_time


__all__ = ["Node"]
