"""Traffic generation: CBR (the paper's workload) plus a Poisson extension."""

from repro.traffic.cbr import CbrSource
from repro.traffic.pairs import choose_connections
from repro.traffic.poisson import PoissonSource

__all__ = ["CbrSource", "PoissonSource", "choose_connections"]
