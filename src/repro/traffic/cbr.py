"""Constant-bit-rate traffic source (the paper's workload).

Each of the paper's 20 CBR connections generates 512-byte packets at a
fixed rate between 0.2 and 2.0 packets/second.  Start times are jittered
over the first inter-packet interval so sources do not fire in lockstep.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError
from repro.traffic.base import RoutingAgent

if TYPE_CHECKING:
    from repro.sim.engine import Simulator


class CbrSource:
    """Fixed-rate application source feeding one DSR agent."""

    def __init__(
        self,
        sim: "Simulator",
        dsr: RoutingAgent,
        dst: int,
        rate_pps: float,
        packet_bytes: int,
        start: float = 0.0,
        stop: Optional[float] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if rate_pps <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate_pps}")
        if packet_bytes <= 0:
            raise ConfigurationError(f"packet size must be positive, got {packet_bytes}")
        self.sim = sim
        self.dsr = dsr
        self.dst = dst
        self.rate_pps = rate_pps
        self.packet_bytes = packet_bytes
        self.start_time = start
        self.stop_time = stop
        self._rng = rng
        self.sent = 0
        self._started = False

    @property
    def interval(self) -> float:
        """Inter-packet interval in seconds."""
        return 1.0 / self.rate_pps

    @property
    def src(self) -> int:
        """Source node id (the DSR agent's node)."""
        return self.dsr.node_id

    def start(self) -> None:
        """Schedule the first packet (with jitter when an RNG is given)."""
        if self._started:
            return
        self._started = True
        jitter = self._rng.uniform(0.0, self.interval) if self._rng else 0.0
        first = max(self.start_time + jitter, self.sim.now)
        self.sim.schedule_at(first, self._emit)

    def _emit(self) -> None:
        if self.stop_time is not None and self.sim.now >= self.stop_time:
            return
        self.dsr.send_data(self.dst, self.packet_bytes, app_seq=self.sent)
        self.sent += 1
        next_time = self.sim.now + self.interval
        if self.stop_time is None or next_time < self.stop_time:
            self.sim.schedule_at(next_time, self._emit)


__all__ = ["CbrSource"]
