"""Connection-pair selection for traffic scenarios."""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.errors import ConfigurationError


def choose_connections(
    num_nodes: int,
    num_connections: int,
    rng: random.Random,
    distinct_sources: bool = True,
) -> List[Tuple[int, int]]:
    """Pick ``num_connections`` (source, destination) pairs.

    Sources are distinct when ``distinct_sources`` (the paper's "20 CBR
    sources"); destinations are arbitrary nodes other than the source.
    """
    if num_connections <= 0:
        raise ConfigurationError("num_connections must be positive")
    if num_nodes < 2:
        raise ConfigurationError("need at least two nodes for traffic")
    if distinct_sources and num_connections > num_nodes:
        raise ConfigurationError(
            f"cannot pick {num_connections} distinct sources from "
            f"{num_nodes} nodes"
        )
    if distinct_sources:
        sources = rng.sample(range(num_nodes), num_connections)
    else:
        sources = [rng.randrange(num_nodes) for _ in range(num_connections)]
    pairs = []
    for src in sources:
        dst = rng.randrange(num_nodes - 1)
        if dst >= src:
            dst += 1
        pairs.append((src, dst))
    return pairs


__all__ = ["choose_connections"]
