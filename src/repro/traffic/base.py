"""Shared typing surface for traffic sources.

Traffic sources only need two things from the routing layer, so they are
typed against this small structural protocol rather than a concrete
protocol engine — CBR/Poisson sources drive DSR and AODV agents alike.
"""

from __future__ import annotations

from typing import Protocol


class RoutingAgent(Protocol):
    """What a traffic source requires of the routing layer."""

    @property
    def node_id(self) -> int: ...  # noqa: D102

    def send_data(self, dst: int, payload_bytes: int,
                  app_seq: int = 0) -> int: ...  # noqa: D102


__all__ = ["RoutingAgent"]
