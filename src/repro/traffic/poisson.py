"""Poisson traffic source (extension beyond the paper's CBR workload).

Used by robustness studies to check that the energy ordering between
schemes is not an artifact of perfectly periodic traffic — bursty arrivals
interact differently with ODPM's keep-alive timers.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError
from repro.traffic.base import RoutingAgent

if TYPE_CHECKING:
    from repro.sim.engine import Simulator


class PoissonSource:
    """Application source with exponential inter-arrival times."""

    def __init__(
        self,
        sim: "Simulator",
        dsr: RoutingAgent,
        dst: int,
        rate_pps: float,
        packet_bytes: int,
        rng: Optional[random.Random],
        start: float = 0.0,
        stop: Optional[float] = None,
    ) -> None:
        if rate_pps <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate_pps}")
        if packet_bytes <= 0:
            raise ConfigurationError(f"packet size must be positive, got {packet_bytes}")
        if rng is None:
            raise ConfigurationError("PoissonSource requires an RNG")
        self.sim = sim
        self.dsr = dsr
        self.dst = dst
        self.rate_pps = rate_pps
        self.packet_bytes = packet_bytes
        self.start_time = start
        self.stop_time = stop
        self._rng = rng
        self.sent = 0
        self._started = False

    @property
    def src(self) -> int:
        """Source node id (the DSR agent's node)."""
        return self.dsr.node_id

    def start(self) -> None:
        """Schedule the first arrival."""
        if self._started:
            return
        self._started = True
        first = max(self.start_time, self.sim.now) + self._gap()
        self.sim.schedule_at(first, self._emit)

    def _gap(self) -> float:
        return self._rng.expovariate(self.rate_pps)

    def _emit(self) -> None:
        if self.stop_time is not None and self.sim.now >= self.stop_time:
            return
        self.dsr.send_data(self.dst, self.packet_bytes, app_seq=self.sent)
        self.sent += 1
        next_time = self.sim.now + self._gap()
        if self.stop_time is None or next_time < self.stop_time:
            self.sim.schedule_at(next_time, self._emit)


__all__ = ["PoissonSource"]
