"""Physical and protocol constants used across the reproduction.

Values mirror the evaluation setup of the paper (Section 4.1) and the
WaveLAN-II radio characterization it cites.  Everything here is a *default*:
scenario objects may override any of them.
"""

from __future__ import annotations

# --- Radio / energy (Lucent WaveLAN-II, as used by the paper) ---------------

#: Power drawn while awake (idle listening, receiving or transmitting), watts.
#: The paper lumps idle/rx/tx together at 1.15 W ("nodes consume 1.15W during
#: AM").
POWER_AWAKE_W = 1.15

#: Power drawn in the low-power sleep ("doze") state, watts (9 mA x 5 V).
POWER_SLEEP_W = 0.045

#: Finer-grained powers for the optional four-state energy model.
POWER_TX_W = 1.50
POWER_RX_W = 1.40
POWER_IDLE_W = 1.15

# --- PHY ---------------------------------------------------------------------

#: Nominal radio transmission range, meters (ns-2 default for 802.11/two-ray).
TX_RANGE_M = 250.0

#: Carrier-sense range, meters (ns-2 default is 2.2x the tx range; we keep the
#: conventional 550 m).
CS_RANGE_M = 550.0

#: Channel bit rate, bits per second (2 Mbps in the paper).
BITRATE_BPS = 2_000_000.0

# --- MAC / PSM timing --------------------------------------------------------

#: Beacon interval, seconds.  The paper's delay and ODPM-energy arithmetic
#: (125 ms average per-hop wait; 225 s of ATIM-awake time over 1125 s) pins
#: this at 250 ms with a 50 ms ATIM window.
BEACON_INTERVAL_S = 0.250

#: ATIM window, seconds.
ATIM_WINDOW_S = 0.050

#: Maximum MAC retransmission attempts for a unicast frame before the link is
#: declared broken (the 802.11 short retry limit).
MAC_RETRY_LIMIT = 7

#: Mean MAC backoff delay, seconds.  This is the event-driven abstraction of
#: the 802.11 contention window; the real DCF averages CWmin/2 = 15.5 slots
#: of 20 us (~310 us), we use 0.5 ms to absorb the residual serialization
#: the event model does not capture.
MAC_BACKOFF_MEAN_S = 0.0005

#: Backoff-mean growth factor per retransmission attempt (contention-window
#: doubling).
MAC_BACKOFF_GROWTH = 2.0

#: Fixed per-frame MAC/PHY overhead in bytes (headers, preamble equivalent).
MAC_HEADER_BYTES = 34

#: MAC ACK frame size in bytes.
ACK_BYTES = 14

#: Short inter-frame space, seconds.
SIFS_S = 10e-6

#: DCF inter-frame space, seconds.
DIFS_S = 50e-6

# --- ODPM keep-alive timeouts (Zheng & Kravets; values used in the paper) ----

#: Stay in AM this long after sending/receiving a RREP, seconds.
ODPM_RREP_TIMEOUT_S = 5.0

#: Stay in AM this long after sending/receiving a data packet (or while being
#: a source/destination of an active flow), seconds.
ODPM_DATA_TIMEOUT_S = 2.0

# --- DSR ---------------------------------------------------------------------

#: Maximum number of routes kept per node's route cache.
DSR_CACHE_CAPACITY = 64

#: Route-discovery retransmission backoff: initial wait before retrying a
#: network-wide RREQ that got no answer, seconds.  Under PSM a discovery
#: round-trip costs roughly two beacon intervals per hop, so this must sit
#: well above the multi-second PSM RTT or every discovery re-floods.
DSR_DISCOVERY_TIMEOUT_S = 2.5

#: Wait after the non-propagating (TTL-1) ring before escalating to a
#: network-wide flood, seconds (about two beacon intervals under PSM).
DSR_NONPROP_TIMEOUT_S = 0.6

#: Exponential backoff cap for repeated discoveries, seconds.
DSR_DISCOVERY_MAX_BACKOFF_S = 10.0

#: Maximum times a discovery is retried before the packet is dropped.
DSR_DISCOVERY_MAX_RETRIES = 8

#: TTL used for the non-propagating (ring-0) RREQ of expanding-ring search.
DSR_NONPROP_TTL = 1

#: Network-wide RREQ TTL.
DSR_NETWORK_TTL = 16

#: Maximum data packets buffered per node awaiting a route.
DSR_SEND_BUFFER_CAPACITY = 64

#: Seconds a packet may wait in the send buffer before being dropped.
DSR_SEND_BUFFER_TIMEOUT_S = 30.0

# --- Scenario defaults (paper Section 4.1) -----------------------------------

#: Number of mobile nodes.
NUM_NODES = 100

#: Arena dimensions, meters.
ARENA_W_M = 1500.0
ARENA_H_M = 300.0

#: Number of CBR connections.
NUM_CONNECTIONS = 20

#: CBR payload size, bytes.
PACKET_BYTES = 512

#: Simulated duration, seconds.
SIM_TIME_S = 1125.0

#: Random-waypoint maximum speed, m/s.
MAX_SPEED_MPS = 20.0

#: Neighbor-table refresh period for the position service, seconds.
NEIGHBOR_REFRESH_S = 1.0
