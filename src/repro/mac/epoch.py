"""Epoch-batched beacon machinery for the PSM MAC.

The paper assumes globally synchronized beacon intervals: every node acts
at shared epoch boundaries (beacon → ATIM window → window end).  The
original implementation scheduled **three events per node per interval**
(beacon, announce, ATIM end), so the kernel dispatched ``3·N`` epoch
events per interval — pure overhead that scales linearly in node count
and dominated the heap at 1k-node scale.

This module batches that machinery: nodes sharing a clock grid — the same
``(beacon_interval, atim_window)`` and the same boundary instant — join an
:class:`_EpochGroup`, and **one kernel event per group per interval**
drives all member nodes.  The common perfectly-synchronized case is a
single group, i.e. 3 events per interval total instead of ``3·N``.

Byte-identical equivalence with the per-node event model
--------------------------------------------------------
Golden traces must not change (only ``events_processed`` may).  The
batched model preserves per-node observable order because:

* **Within a batch** members are processed in insertion order, which is
  ascending node id (``build_network`` starts MACs in id order).  In the
  per-node model, simultaneous per-node events fired in scheduling-seq
  order, which was the same ascending-id order — each beacon schedules
  the node's next beacon, so the order perpetuates interval to interval.
* **Across groups and against other events** ordering is by the kernel's
  ``(time, priority, seq)`` key exactly as before: a group's chain event
  is scheduled at the same instant, with the same priority, as the
  per-node events it replaces, so it sorts identically relative to
  traffic, DCF, fault and deferred-announcement events.
* **Crash/recovery**: a halted node leaves its group; other members'
  order is unchanged.  A recovered node re-joins *at the end* of the
  member list — matching the per-node model, where the resumed node's
  beacon event was scheduled after every surviving member's (their
  events for boundary ``t_b`` were scheduled at ``t_b - T``, strictly
  before the resume instant) and that tail position then perpetuates.
  A resumed node whose recomputed boundary does not bit-exactly match
  the group's pending boundary (float accumulation drift, late-started
  grids) gets a private splinter group, reproducing the per-node chain
  it would have run.

The ATIM-end decision is vectorized: per-member wake *reasons* are kept
as small int bitmasks (see :mod:`repro.mac.psm`), gathered into a numpy
reasons/mode table per batch, and the sleep/awake partition is a single
vector compare.  Per-node *effects* (trace emission, radio sleep, DCF
submission) are then applied in member order so traces stay identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.events import PRIORITY_KERNEL, Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mac.psm import PsmMac

#: group key: (beacon_interval, atim_window, boundary instant)
_GroupKey = Tuple[float, float, float]


class _EpochGroup:
    """One clock grid: the members sharing a beacon/ATIM boundary chain.

    The group owns the three chain events (beacon boundary at kernel
    priority, announce fan-out and ATIM-window end at normal priority)
    and calls the per-node bodies on every member.  Membership mutations
    happen only from fault events (halt/resume), never from inside a
    batch body, so the fire loops iterate the live list.
    """

    __slots__ = ("sim", "beacon_interval", "atim_window", "members",
                 "next_boundary", "_beacon_event", "_announce_event",
                 "_atim_event")

    def __init__(self, sim: Simulator, beacon_interval: float,
                 atim_window: float) -> None:
        self.sim = sim
        self.beacon_interval = beacon_interval
        self.atim_window = atim_window
        self.members: List["PsmMac"] = []
        #: absolute time of the pending beacon fire (the event's own time,
        #: so resume-alignment checks compare bit-exact floats)
        self.next_boundary = float("nan")
        self._beacon_event: Optional[Event] = None
        self._announce_event: Optional[Event] = None
        self._atim_event: Optional[Event] = None

    @property
    def alive(self) -> bool:
        """True while the beacon chain has a pending event."""
        return self._beacon_event is not None

    # -- membership ----------------------------------------------------

    def start_chain(self, first_boundary: float) -> None:
        """Arm the beacon chain; first fire at ``first_boundary``."""
        self._beacon_event = self.sim.schedule_at(
            first_boundary, self._fire_beacon, priority=PRIORITY_KERNEL)
        self.next_boundary = self._beacon_event.time

    def add(self, mac: "PsmMac", active_from: float) -> None:
        """Append ``mac``; it first participates at ``active_from``.

        The guard matters mid-window: a node recovering between a beacon
        and its pending ATIM-end event must not be swept into batches of
        the interval it missed the start of.
        """
        mac._epoch_active_from = active_from
        self.members.append(mac)

    def remove(self, mac: "PsmMac") -> None:
        """Drop a halted member; cancel the chain when the group empties."""
        try:
            self.members.remove(mac)
        except ValueError:
            return
        if not self.members:
            for event in (self._beacon_event, self._announce_event,
                          self._atim_event):
                if event is not None:
                    event.cancel()
            self._beacon_event = None
            self._announce_event = None
            self._atim_event = None

    # -- the three batched chain events --------------------------------

    def _fire_beacon(self) -> None:
        sim = self.sim
        now = sim.now
        for mac in self.members:
            if mac._epoch_active_from <= now:
                mac._beacon_body(now)
        # Same scheduling order as the per-node model: announce after
        # every node has processed its beacon boundary, ATIM end one
        # window later, next boundary one interval later (kernel).
        self._announce_event = sim.schedule_at(now, self._fire_announce, now)
        self._atim_event = sim.schedule(
            self.atim_window, self._fire_atim_end, now)
        self._beacon_event = sim.schedule(
            self.beacon_interval, self._fire_beacon, priority=PRIORITY_KERNEL)
        self.next_boundary = self._beacon_event.time

    def _fire_announce(self, interval_start: float) -> None:
        for mac in self.members:
            if mac._epoch_active_from <= interval_start:
                mac._announce_body()

    def _fire_atim_end(self, interval_start: float) -> None:
        now = self.sim.now
        active = [mac for mac in self.members
                  if mac._epoch_active_from <= interval_start]
        if len(active) == 1:
            active[0]._atim_end_body(now)
            return
        if not active:
            return
        # Vectorized sleep/awake decision: fold each member's reasons,
        # power mode and pending-tx state into one bitmask row of a
        # numpy table, decide the whole group with a single vector
        # compare, then apply per-node effects in member order (the
        # folds are pure reads, so fold/apply separation is safe).
        folds = [mac._atim_fold(now) for mac in active]
        table = np.fromiter((mask for mask, _ in folds),
                            dtype=np.int64, count=len(folds))
        awake = (table != 0).tolist()
        for mac, (mask, announced), stays_awake in zip(active, folds, awake):
            if stays_awake:
                mac._atim_apply(now, mask, announced)
            else:
                mac._atim_sleep(now)


class EpochScheduler:
    """Registry of epoch groups; one per distinct clock grid.

    ``register`` is called once per MAC at ``start()`` time, ``rejoin``
    on fault recovery, ``deregister`` on crash.  A :class:`PsmMac`
    constructed without a shared scheduler builds a private one, which
    degenerates to exactly the per-node event model (single-member
    groups), preserving standalone-construction behavior.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._groups: Dict[_GroupKey, _EpochGroup] = {}

    def register(self, mac: "PsmMac") -> _EpochGroup:
        """Join (or create) the group for ``mac``'s clock grid.

        The first boundary is ``now + clock_offset`` — the same float
        expression the per-node model produced via ``sim.schedule`` —
        and it is part of the group key, so nodes started at different
        times never share a chain even with equal offsets.
        """
        first_boundary = self.sim.now + mac.clock_offset
        key = (mac.beacon_interval, mac.atim_window, first_boundary)
        group = self._groups.get(key)
        if group is None or group.next_boundary != first_boundary:
            # No group on this grid, or a stale key: the chain already
            # advanced past this boundary (possible only for an
            # offset-0 registration within the boundary timestamp).
            group = _EpochGroup(self.sim, mac.beacon_interval,
                                mac.atim_window)
            group.start_chain(first_boundary)
            self._groups[key] = group
        group.add(mac, active_from=first_boundary)
        return group

    def rejoin(self, mac: "PsmMac", boundary: float) -> _EpochGroup:
        """Re-attach a recovered node at ``boundary`` (next grid point).

        Appends to the node's previous group when that group is alive
        and its pending fire bit-exactly matches ``boundary``; otherwise
        the node gets a fresh splinter group so its chain reproduces the
        per-node model's float arithmetic exactly.
        """
        group = mac._epoch_group
        if group is not None and group.alive \
                and group.next_boundary == boundary:
            group.add(mac, active_from=boundary)
            return group
        group = _EpochGroup(self.sim, mac.beacon_interval, mac.atim_window)
        group.start_chain(boundary)
        group.add(mac, active_from=boundary)
        return group

    def deregister(self, mac: "PsmMac") -> None:
        """Detach a halted node from its group (idempotent)."""
        group = mac._epoch_group
        if group is not None:
            group.remove(mac)


__all__ = ["EpochScheduler"]
