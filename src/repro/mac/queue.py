"""Bounded FIFO transmission queue used by the MAC layers."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterator, List, Optional

from repro.mac.frames import Frame


@dataclass
class QueuedFrame:
    """A frame waiting for the medium, with its completion callbacks."""

    frame: Frame
    enqueued_at: float
    on_success: Optional[Callable[[Frame], None]] = None
    on_failure: Optional[Callable[[Frame], None]] = None
    attempts: int = 0
    #: set by PSM when the frame was announced in the current ATIM window
    announced: bool = False


class TxQueue:
    """Bounded FIFO of :class:`QueuedFrame`.

    On overflow the *oldest* entry is dropped (drop-head: stale packets are
    the least useful ones in a MANET) and its failure callback fires.
    """

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = capacity
        self._queue: Deque[QueuedFrame] = deque()
        self.dropped_overflow = 0

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __iter__(self) -> Iterator[QueuedFrame]:
        return iter(self._queue)

    def push(self, entry: QueuedFrame) -> Optional[QueuedFrame]:
        """Enqueue; returns the evicted entry if the queue was full."""
        evicted = None
        if len(self._queue) >= self.capacity:
            evicted = self._queue.popleft()
            self.dropped_overflow += 1
            if evicted.on_failure is not None:
                evicted.on_failure(evicted.frame)
        self._queue.append(entry)
        return evicted

    def pop(self) -> QueuedFrame:
        """Dequeue the head entry."""
        return self._queue.popleft()

    def peek(self) -> QueuedFrame:
        """Head entry without removing it."""
        return self._queue[0]

    def remove(self, entry: QueuedFrame) -> bool:
        """Remove a specific entry; True when it was present."""
        try:
            self._queue.remove(entry)
            return True
        except ValueError:
            return False

    def announced_entries(self) -> List[QueuedFrame]:
        """Entries marked as announced in the current beacon interval."""
        return [e for e in self._queue if e.announced]

    def clear_announcements(self) -> None:
        """Reset the announced flag on all entries (new beacon interval)."""
        for entry in self._queue:
            entry.announced = False


__all__ = ["QueuedFrame", "TxQueue"]
