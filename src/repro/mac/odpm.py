"""On-Demand Power Management (Zheng & Kravets, INFOCOM 2003).

ODPM keeps a node in active mode (AM) for a while after communication events
that predict more traffic, and lets it fall back to PS mode otherwise:

* receiving or forwarding a **RREP** arms a 5 s keep-alive (a route through
  this node was just set up, data is likely to follow);
* sending, receiving or forwarding a **data packet** — or being the source or
  destination of an active flow — arms a 2 s keep-alive.

The keep-alive is a high-water mark: each event extends the AM deadline to
``now + timeout`` if that is later than the current deadline.  The paper uses
exactly these two timeout values and observes the resulting behaviour: with
0.5 s inter-packet gaps (2 pkt/s) the 2 s timer never expires, so every node
on an active path stays awake for the entire run.
"""

from __future__ import annotations

from repro.constants import ODPM_DATA_TIMEOUT_S, ODPM_RREP_TIMEOUT_S
from repro.errors import ConfigurationError
from repro.mac.power import PowerManager, PowerMode
from repro.sim.trace import NULL_TRACE, TraceSink


class OdpmPowerManager(PowerManager):
    """Event-driven AM/PS switching with per-event keep-alive timeouts."""

    def __init__(
        self,
        rrep_timeout: float = ODPM_RREP_TIMEOUT_S,
        data_timeout: float = ODPM_DATA_TIMEOUT_S,
        node_id: int = -1,
        trace: TraceSink = NULL_TRACE,
    ) -> None:
        if rrep_timeout <= 0 or data_timeout <= 0:
            raise ConfigurationError("ODPM timeouts must be positive")
        self.rrep_timeout = rrep_timeout
        self.data_timeout = data_timeout
        self.node_id = node_id
        self.trace = trace
        self._am_until = 0.0
        #: number of PS->AM transitions (mode-switch overhead diagnostics)
        self.switches_to_am = 0

    @property
    def am_deadline(self) -> float:
        """Absolute time until which the node stays in AM."""
        return self._am_until

    def mode(self, now: float) -> PowerMode:
        """AM while a keep-alive is armed, PS otherwise."""
        return PowerMode.AM if now < self._am_until else PowerMode.PS

    def note_event(self, kind: str, now: float) -> None:
        """Arm/extend the AM keep-alive for a communication event."""
        if kind == "rrep":
            timeout = self.rrep_timeout
        elif kind in ("data", "endpoint"):
            timeout = self.data_timeout
        else:
            raise ConfigurationError(f"unknown ODPM event kind {kind!r}")
        was_ps = now >= self._am_until
        deadline = now + timeout
        if deadline > self._am_until:
            self._am_until = deadline
        if was_ps:
            self.switches_to_am += 1
            if self.trace.enabled:
                self.trace.emit(now, "odpm", self.node_id, "am_enter",
                                cause=kind, until=self._am_until)

    def describe(self) -> str:
        """Label with the configured timeouts."""
        return (
            f"ODPM(rrep={self.rrep_timeout:g}s, data={self.data_timeout:g}s)"
        )


__all__ = ["OdpmPowerManager"]
