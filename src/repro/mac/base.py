"""MAC interface and the plain-802.11 (no PSM) MAC.

The upper layer (DSR) talks to every MAC through four callbacks set with
:meth:`MacBase.set_upper`:

* ``on_receive(packet, prev_hop)`` — a packet addressed to this node (or a
  broadcast) was decoded;
* ``on_promiscuous(packet, transmitter)`` — a packet addressed to somebody
  else was decoded *and* the MAC's overhearing rules say the routing layer
  may use it;
* ``on_link_failure(packet, next_hop)`` — a unicast send exhausted its MAC
  retries (DSR treats this as a broken link);
* ``on_sent(packet, next_hop)`` — a unicast was delivered and acknowledged
  (or a broadcast was put on air);
* ``on_dropped(packet)`` — the MAC discarded the packet without a
  transmission verdict (interface-queue overflow).  NOT a link failure:
  congestion drops must not trigger DSR route maintenance.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional, Set

from repro.mac.dcf import DcfTransmitter, TxOutcome
from repro.mac.frames import BROADCAST, Frame, FrameKind
from repro.mobility.manager import PositionService
from repro.phy.channel import Channel
from repro.phy.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.trace import NULL_TRACE, TraceSink


class MacBase:
    """Common wiring for all MAC personalities."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        channel: Channel,
        radio: Radio,
        positions: PositionService,
        rng: random.Random,
        trace: TraceSink = NULL_TRACE,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.channel = channel
        self.radio = radio
        self.positions = positions
        self.rng = rng
        self.trace = trace
        self.dcf = DcfTransmitter(sim, node_id, channel, rng, trace=trace)
        channel.attach(node_id, self._on_channel_receive, self.dcf.on_tx_complete)
        self._on_receive: Callable[..., None] = _noop
        self._on_promiscuous: Callable[..., None] = _noop
        self._on_link_failure: Callable[..., None] = _noop
        self._on_sent: Callable[..., None] = _noop
        self._on_dropped: Callable[..., None] = _noop
        #: set while the node is crashed (fault injection); halted MACs
        #: neither transmit nor absorb ATIM announcements
        self._halted = False
        # Statistics
        self.unicasts_sent = 0
        self.unicasts_failed = 0
        self.broadcasts_sent = 0

    # ------------------------------------------------------------------

    def set_upper(
        self,
        on_receive: Callable[..., None],
        on_promiscuous: Optional[Callable[..., None]] = None,
        on_link_failure: Optional[Callable[..., None]] = None,
        on_sent: Optional[Callable[..., None]] = None,
        on_dropped: Optional[Callable[..., None]] = None,
    ) -> None:
        """Install the routing-layer callbacks."""
        self._on_receive = on_receive
        self._on_promiscuous = on_promiscuous or _noop
        self._on_link_failure = on_link_failure or _noop
        self._on_sent = on_sent or _noop
        self._on_dropped = on_dropped or _noop

    def start(self) -> None:
        """Begin operation (PSM MACs schedule their beacon clock here)."""

    def finalize(self) -> None:
        """Stop operation at the end of a run."""

    def halt(self) -> None:
        """Node crash (fault injection): drop all pending MAC work.

        Cancels the DCF pipeline — in-flight and queued attempts die with
        the node; a transmission already on air is truncated by the
        injector at the channel level.  Subclasses extend this to cancel
        their own timers (the PSM beacon chain).
        """
        self._halted = True
        self.dcf.cancel_all()

    def resume(self) -> None:
        """Recover from a crash, cold (fault injection).

        The base implementation only lifts the halt; subclasses restart
        their clocks (and the always-on MAC re-wakes its radio).
        """
        self._halted = False

    def send(self, packet: Any, dst: int) -> None:
        """Transmit ``packet`` to neighbor ``dst`` (or :data:`BROADCAST`)."""
        raise NotImplementedError

    def power_hint(self, kind: str) -> None:
        """Power-relevant event hint from upper layers (ODPM consumes it)."""

    @property
    def queue_depth(self) -> int:
        """Frames buffered at this MAC (observability gauge).

        For the always-on MAC that is the DCF pipeline; PSM MACs add their
        beacon-interval transmit queue on top.
        """
        return self.dcf.queue_depth

    # ------------------------------------------------------------------

    def _on_channel_receive(self, frame: Frame, sender: int) -> None:
        raise NotImplementedError


def _noop(*_args: Any, **_kwargs: Any) -> None:
    """Default do-nothing upper-layer callback."""


class AlwaysOnMac(MacBase):
    """Plain IEEE 802.11 DCF: the radio never sleeps, packets go immediately.

    This is the paper's ``802.11`` baseline — best delivery ratio and delay,
    maximum (and perfectly uniform) energy: every node idles at 1.15 W for
    the whole run.  Overhearing is unconditional and free.
    """

    def start(self) -> None:
        """Wake the radio permanently (no PSM)."""
        self.radio.wake()

    def resume(self) -> None:
        """Recover from a crash: back to permanently awake."""
        super().resume()
        self.radio.wake()

    def send(self, packet: Any, dst: int) -> None:
        """Transmit immediately under DCF contention."""
        frame = Frame(self.node_id, dst, packet, FrameKind.DATA)
        if dst == BROADCAST:
            self.broadcasts_sent += 1
        else:
            self.unicasts_sent += 1
        self.dcf.submit(frame, self._on_dcf_done)

    def _on_dcf_done(self, frame: Frame, outcome: TxOutcome, delivered: Set[int]) -> None:
        if outcome is TxOutcome.DELIVERED:
            self._on_sent(frame.packet, frame.dst)
        elif outcome is TxOutcome.FAILED:
            self.unicasts_failed += 1
            self._on_link_failure(frame.packet, frame.dst)
        # DEFERRED cannot happen here (no deadlines without PSM).

    def _on_channel_receive(self, frame: Frame, sender: int) -> None:
        if frame.dst == self.node_id or frame.is_broadcast:
            self._on_receive(frame.packet, sender)
        else:
            # Always-awake radios overhear everything, as classic DSR assumes.
            self._on_promiscuous(frame.packet, sender)


__all__ = ["MacBase", "AlwaysOnMac"]
