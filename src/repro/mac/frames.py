"""MAC frames and ATIM announcements.

A :class:`Frame` wraps one network-layer packet for transmission on the
channel.  An :class:`Announcement` is the ATIM-window advertisement of a
buffered frame; in Rcast it additionally carries the sender's desired
overhearing level, encoded on the wire as a management-frame subtype
(see :mod:`repro.core.atim`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.core.policy import OverhearingLevel

#: MAC broadcast address.
BROADCAST = -1

_frame_ids = itertools.count()


def reset_frame_ids() -> None:
    """Restart frame ids at 0 (per-build; keeps traces byte-identical)."""
    global _frame_ids
    _frame_ids = itertools.count()


class FrameKind(Enum):
    """MAC-level frame classes."""

    DATA = "data"      # carries a network-layer packet (data or DSR control)
    ATIM = "atim"      # ad-hoc traffic indication (PSM announcement)
    BEACON = "beacon"  # beacon (implicit under the global-sync assumption)


@dataclass
class Frame:
    """A MAC frame in flight.

    ``src``/``dst`` are MAC addresses (node ids, or :data:`BROADCAST`);
    ``packet`` is the network-layer payload and supplies the size.
    """

    src: int
    dst: int
    packet: Any
    kind: FrameKind = FrameKind.DATA
    frame_id: int = field(default_factory=lambda: next(_frame_ids))
    #: sender's power-management mode at transmission time (the PwrMgt bit);
    #: ODPM receivers use it to maintain their neighbor-mode beliefs.
    sender_mode: Any = None

    @property
    def size_bytes(self) -> int:
        """Payload size in bytes (MAC overhead is added by the channel)."""
        return int(self.packet.size_bytes)

    @property
    def is_broadcast(self) -> bool:
        """True for MAC broadcast frames."""
        return self.dst == BROADCAST

    def describe(self) -> str:
        """Short human-readable summary for traces."""
        pkt = getattr(self.packet, "kind", "?")
        return f"{self.kind.value}/{pkt} {self.src}->{self.dst} #{self.frame_id}"


@dataclass(frozen=True)
class Announcement:
    """An ATIM-window advertisement of a pending frame.

    ``level`` is the advertised overhearing level
    (:class:`repro.core.policy.OverhearingLevel`); ``subtype`` is its
    on-the-wire encoding.  ``packet_kind`` lets receivers reason about what
    is being advertised (the Rcast sender-ID factor uses it).
    """

    sender: int
    dst: int
    frame_id: int
    level: "OverhearingLevel"
    subtype: int
    packet_kind: str
    #: sender's power-management mode (PwrMgt bit of the ATIM frame control)
    sender_mode: Any = None

    @property
    def is_broadcast(self) -> bool:
        """True for broadcast advertisements (e.g. RREQ)."""
        return self.dst == BROADCAST


__all__ = ["BROADCAST", "Frame", "FrameKind", "Announcement",
           "reset_frame_ids"]
