"""Event-driven abstraction of the 802.11 DCF (CSMA/CA) transmit path.

Per node, the :class:`DcfTransmitter` serializes outgoing frames and, for
each one:

1. waits DIFS plus a random backoff slot (desynchronizing nodes that sensed
   the medium idle at the same instant, e.g. at a data-window start),
2. defers while carrier sense reports the medium busy — **wake-on-idle**:
   instead of re-scheduling an attempt event per backoff draw, the
   transmitter registers with :meth:`Channel.wait_for_idle` and, when the
   medium goes quiet, replays the backoff draws the poll model would have
   made across the busy gap in one pass (see :meth:`_resume_from_wait`),
3. transmits, and applies ACK semantics: a unicast frame succeeded iff the
   destination decoded it; otherwise the frame is retried up to the retry
   limit with a new backoff each time,
4. honours a *deadline* (the PSM data-window end): an attempt that could not
   finish **strictly before** the deadline completes with outcome
   ``DEFERRED`` so the PSM MAC can re-announce the frame in the next beacon
   interval.  The window is half-open — ``now + airtime >= deadline``
   defers — because the window-closing beacon event runs at kernel priority
   at the deadline instant, so a frame finishing exactly *at* the deadline
   would land after the window closed.  Both deadline checks (the attempt
   pre-check and the busy-gap draw check) use this same boundary.

Backoff lengths are exponential with a configurable mean — the event-level
stand-in for the binary-exponential contention window, preserving the two
properties the results depend on: randomized desynchronization and a busy
medium pushing attempts out in time.  The wake-on-idle replay draws from the
same ``mac:{node}`` stream in the same poll order, so the contention-timing
distribution is unchanged; only the event count collapses (the bench
workload spent ~1.27M attempt events on 48k transmissions under the poll
model — a 26:1 ratio this removes).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from enum import Enum
from math import log
from typing import Callable, Deque, Optional, Set

from repro.constants import (
    DIFS_S,
    MAC_BACKOFF_GROWTH,
    MAC_BACKOFF_MEAN_S,
    MAC_RETRY_LIMIT,
)
from repro.mac.frames import Frame
from repro.phy.channel import Channel
from repro.phy.energy import RadioState
from repro.sim.events import Event
from repro.sim.engine import Simulator
from repro.sim.trace import NULL_TRACE, TraceSink


#: ``MAC_BACKOFF_GROWTH ** min(exponent, 6)``, precomputed — the backoff
#: runs on every busy deferral and retry, and the float power dominated it.
_BACKOFF_GROWTH_POW = tuple(MAC_BACKOFF_GROWTH ** i for i in range(7))


class TxOutcome(Enum):
    """Final disposition of a submitted frame."""

    DELIVERED = "delivered"  # unicast ACKed / broadcast put on air
    FAILED = "failed"        # retry limit exhausted (link considered broken)
    DEFERRED = "deferred"    # could not finish before the deadline


@dataclass
class _Submission:
    frame: Frame
    on_done: Callable[[Frame, TxOutcome, Set[int]], None]
    deadline: Optional[float]
    #: channel airtime for this frame, computed once at submission —
    #: busy deferrals re-run the deadline check on every attempt, and the
    #: frame's size does not change while it is queued.
    airtime: float = 0.0
    attempts: int = 0
    #: next poll-model attempt time while waiting for the medium to go
    #: idle; only meaningful between wait_for_idle and the wake
    next_attempt: float = 0.0


class DcfTransmitter:
    """Serializing CSMA/CA transmit pipeline for one node."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        channel: Channel,
        rng: random.Random,
        retry_limit: int = MAC_RETRY_LIMIT,
        backoff_mean: float = MAC_BACKOFF_MEAN_S,
        trace: TraceSink = NULL_TRACE,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.channel = channel
        self.rng = rng
        self.retry_limit = retry_limit
        self.backoff_mean = backoff_mean
        #: per-retry-level exponential rates, precomputed exactly as the
        #: inline expression (``1.0 / (mean * growth**i)``) so the inlined
        #: draw below stays bit-identical to ``rng.expovariate``.
        self._backoff_lambd = tuple(
            1.0 / (backoff_mean * g) for g in _BACKOFF_GROWTH_POW)
        self.trace = trace
        self._pending: Deque[_Submission] = deque()
        self._current: Optional[_Submission] = None
        #: our Radio, resolved lazily on the first attempt (radios may be
        #: registered with the channel after the MAC stack is built)
        self._radio = None
        self._attempt_event: Optional[Event] = None
        #: True while registered with Channel.wait_for_idle
        self._waiting_idle = False
        #: hot-loop callables bound once — each ``self.channel.is_busy`` /
        #: ``self._attempt`` access would allocate a bound method.
        self._is_busy = channel.is_busy
        self._attempt_cb = self._attempt
        self._idle_cb = self._on_medium_idle
        # Statistics
        self.busy_deferrals = 0
        self.idle_waits = 0
        self.retries = 0
        self.failures = 0

    # ------------------------------------------------------------------

    @property
    def idle(self) -> bool:
        """True when nothing is queued or in flight."""
        return self._current is None and not self._pending

    @property
    def queue_depth(self) -> int:
        """Submissions waiting or in flight (observability gauge)."""
        return len(self._pending) + (0 if self._current is None else 1)

    def submit(
        self,
        frame: Frame,
        on_done: Callable[[Frame, TxOutcome, Set[int]], None],
        deadline: Optional[float] = None,
    ) -> None:
        """Queue ``frame`` for CSMA/CA transmission."""
        airtime = self.channel.transmission_time(frame.size_bytes)
        self._pending.append(_Submission(frame, on_done, deadline, airtime))
        if self._current is None:
            self._next()

    def cancel_all(self) -> None:
        """Drop everything (used at beacon boundaries for stale attempts)."""
        if self._attempt_event is not None:
            self._attempt_event.cancel()
            self._attempt_event = None
        if self._waiting_idle:
            self.channel.cancel_idle_wait(self.node_id)
            self._waiting_idle = False
        self._pending.clear()
        self._current = None

    # ------------------------------------------------------------------

    def _backoff(self, exponent: int = 0) -> float:
        """Exponential backoff whose mean doubles with each retry.

        Mirrors the 802.11 contention-window doubling: retransmissions
        spread out in time, de-correlating repeated interference.

        ``exponent`` is the number of *completed, failed* transmissions of
        the current submission — i.e. ``sub.attempts`` read **after** the
        retry path has incremented it.  Both call sites observe this: busy
        deferrals before the first transmission draw at exponent 0 (no
        transmission has failed yet, however many times carrier sense
        deferred), and the k-th retry draws at exponent k.  Keeping the
        increment-then-look-up ordering identical on the busy-deferral and
        retry paths is what makes the wake-on-idle replay's draws land on
        the same growth levels as the poll model's.
        """
        # Inlined ``rng.expovariate(lambd)`` — same float operations in the
        # same order, minus a method call that fires on every deferral.
        lambd = self._backoff_lambd[exponent if exponent < 6 else 6]
        return -log(1.0 - self.rng.random()) / lambd

    def _next(self) -> None:
        if self._current is not None:
            # A completion callback already submitted (and started) new
            # work; clobbering it here would orphan that submission.
            return
        if not self._pending:
            return
        self._current = self._pending.popleft()
        self._schedule_attempt(DIFS_S + self._backoff())

    def _schedule_attempt(self, delay: float) -> None:
        self._attempt_event = self.sim.schedule(delay, self._attempt_cb)

    def _finish(self, outcome: TxOutcome, delivered: Set[int]) -> None:
        sub = self._current
        assert sub is not None, "_finish with no submission in flight"
        self._current = None
        self._attempt_event = None
        if outcome is TxOutcome.FAILED:
            self.failures += 1
        sub.on_done(sub.frame, outcome, delivered)
        self._next()

    def _attempt(self) -> None:
        sub = self._current
        if sub is None:  # cancelled between scheduling and firing
            return
        now = self.sim.now
        deadline = sub.deadline
        if deadline is not None and now + sub.airtime >= deadline:
            # Half-open data window: finishing exactly at the deadline is
            # already outside it (the closing beacon runs first).
            self._finish(TxOutcome.DEFERRED, set())
            return
        radio = self._radio
        if radio is None:
            radio = self._radio = self.channel.radios[self.node_id]
            radio.on_sleep = self._on_radio_sleep
        if radio.meter._state is RadioState.SLEEP:
            # (Radio.is_awake, inlined — this check runs per attempt.)
            # The PSM MAC keeps senders awake; reaching this means the node
            # went to sleep with work queued — defer to the next interval.
            self._finish(TxOutcome.DEFERRED, set())
            return
        if self._is_busy(self.node_id):
            self.busy_deferrals += 1
            t_next = now + self._backoff(sub.attempts)
            if deadline is not None and t_next + sub.airtime >= deadline:
                # The next poll can no longer fit the frame before the
                # window closes; keep it as a real event so the DEFERRED
                # completion fires at the poll-model time (the PSM MAC
                # must see it before the next beacon re-announcement).
                # Bounded: fires exactly once, then the deadline pre-check
                # completes the submission.
                self._attempt_event = self.sim.schedule_at(  # rcast-lint: disable=R006 -- bounded deadline-expiry reschedule, not a loop
                    t_next, self._attempt_cb)
                return
            sub.next_attempt = t_next
            self.idle_waits += 1
            self._waiting_idle = True
            self.channel.wait_for_idle(self.node_id, self._idle_cb)
            return
        self.channel.transmit(self.node_id, sub.frame)
        # Completion arrives via the channel's tx-complete callback, which
        # the owning MAC routes back into :meth:`on_tx_complete`.

    # ------------------------------------------------------------------
    # Wake-on-idle
    # ------------------------------------------------------------------

    def _resume_from_wait(self) -> None:
        """Replay the poll-model backoff draws across the busy gap.

        While the transmitter was registered with ``wait_for_idle`` its
        carrier sense stayed busy (the channel wakes waiters at the first
        transmission end that quiets their medium), so every poll the old
        model would have run before ``now`` would have sensed busy: count
        it, draw its backoff from the same rng stream, and move on.  The
        first poll time at or after ``now`` becomes a real attempt event
        again — it re-checks deadline, sleep and carrier sense exactly as
        a scheduled poll would have.
        """
        sub = self._current
        self._waiting_idle = False
        if sub is None:
            return
        now = self.sim.now
        t_next = sub.next_attempt
        deadline = sub.deadline
        airtime = sub.airtime
        while t_next < now:
            self.busy_deferrals += 1
            t_next += self._backoff(sub.attempts)
            if deadline is not None and t_next + airtime >= deadline:
                # This draw's attempt cannot fit the window; stop replaying
                # and let the real event defer (at the poll time, or now if
                # the poll time is already behind the clock).
                break
        if t_next < now:
            t_next = now
        self._attempt_event = self.sim.schedule_at(t_next, self._attempt_cb)

    def _on_medium_idle(self) -> None:
        """Channel callback: our carrier sense just went quiet."""
        if not self._waiting_idle:
            return  # stale wake (cancel_all raced with the wake pass)
        self._resume_from_wait()

    def _on_radio_sleep(self) -> None:
        """Radio hook: our radio dozed off while we may be waiting.

        The poll model kept polling through a sleeping radio and completed
        with ``DEFERRED`` at the first poll after the doze transition; to
        match, a pending idle-wait is converted back into a real attempt
        event, whose sleep check then defers (or transmits, if the radio
        was woken again before the poll time).
        """
        if not self._waiting_idle:
            return
        self.channel.cancel_idle_wait(self.node_id)
        self._resume_from_wait()

    # ------------------------------------------------------------------

    def on_tx_complete(self, frame: Frame, delivered: Set[int]) -> None:
        """Channel callback: our transmission finished."""
        sub = self._current
        if sub is None or sub.frame is not frame:
            return  # stale completion after cancel_all()
        if frame.is_broadcast or frame.dst in delivered:
            if self.trace.enabled:
                self.trace.emit(self.sim.now, "dcf", self.node_id, "tx_ok",
                                frame=frame.describe(),
                                attempts=sub.attempts + 1)
            self._finish(TxOutcome.DELIVERED, delivered)
            return
        sub.attempts += 1
        self.retries += 1
        if sub.attempts >= self.retry_limit:
            if self.trace.enabled:
                self.trace.emit(self.sim.now, "dcf", self.node_id, "tx_fail",
                                frame=frame.describe(),
                                attempts=sub.attempts)
            self._finish(TxOutcome.FAILED, delivered)
            return
        self._schedule_attempt(self._backoff(sub.attempts))


__all__ = ["DcfTransmitter", "TxOutcome"]
