"""IEEE 802.11 PSM MAC with pluggable overhearing and power management.

Time is divided into globally synchronized beacon intervals (the paper
assumes a distributed clock-sync algorithm).  Each interval:

1. **Beacon boundary** — every radio wakes; per-interval state resets.
2. **ATIM window** — every node advertises its buffered frames to its
   radio neighbors.  Announcements carry the Rcast overhearing level as an
   ATIM subtype.  Each neighbor classifies every advertisement: *addressed*
   (stay awake), *broadcast* (stay awake), or *somebody else's unicast*
   (consult the Rcast manager: NONE -> sleep, UNCONDITIONAL -> stay awake,
   RANDOMIZED -> Bernoulli(P_R)).  Per the paper's explicit simplifying
   assumption, advertisements themselves always succeed; their energy cost
   is captured by everyone being awake for the whole window.
3. **ATIM window end** — nodes with no reason to stay awake (no frames to
   send, not addressed, no audible broadcast, no elected overhearing, not
   in AM mode) sleep until the next beacon boundary.  The rest transmit
   their announced frames under DCF contention, with the boundary as a hard
   deadline; frames that do not make it are re-announced next interval.

ODPM rides on top via its power manager: AM-mode nodes stay awake through
entire intervals, and an AM sender that *believes* its next hop is also in
AM (from the PwrMgt bit of previously heard frames) bypasses the ATIM path
and transmits immediately; if the belief turns out wrong the frame falls
back to the ATIM path, paying delay rather than losing the packet — exactly
the failure mode the paper describes for inaccurate mode information.
"""

from __future__ import annotations

import math
import random
from functools import partial
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.constants import ATIM_WINDOW_S, BEACON_INTERVAL_S
from repro.core.rcast import RcastManager
from repro.errors import ConfigurationError
from repro.mac.base import MacBase
from repro.mac.dcf import TxOutcome
from repro.mac.epoch import EpochScheduler, _EpochGroup
from repro.mac.frames import BROADCAST, Announcement, Frame, FrameKind
from repro.mac.power import AlwaysPs, PowerManager, PowerMode
from repro.mac.queue import QueuedFrame, TxQueue
from repro.mobility.manager import PositionService
from repro.phy.channel import Channel
from repro.phy.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.trace import TraceSink

# Per-interval wake reasons as bit flags.  Bit order is alphabetical by
# reason name, so joining the set bits in ascending order reproduces the
# ``",".join(sorted(reasons))`` strings of the original set-based code
# byte for byte in traces.
_R_ADDRESSED = 1
_R_AM = 2
_R_BROADCAST = 4
_R_OVERHEAR = 8
_R_TX = 16
_REASON_BITS = ((_R_ADDRESSED, "addressed"), (_R_AM, "am"),
                (_R_BROADCAST, "broadcast"), (_R_OVERHEAR, "overhear"),
                (_R_TX, "tx"))
#: mask -> trace string, precomputed for all 32 combinations
_REASON_STRINGS = tuple(
    ",".join(name for bit, name in _REASON_BITS if mask & bit)
    for mask in range(32)
)


class PsmMac(MacBase):
    """802.11 PSM MAC; see module docstring for the interval protocol."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        channel: Channel,
        radio: Radio,
        positions: PositionService,
        rng: random.Random,
        rcast: RcastManager,
        power_manager: Optional[PowerManager] = None,
        beacon_interval: float = BEACON_INTERVAL_S,
        atim_window: float = ATIM_WINDOW_S,
        queue_capacity: int = 64,
        max_announcements: int = 8,
        tap_in_am: bool = False,
        opportunistic_tap: bool = False,
        mode_belief_ttl: float = 2.0,
        clock_offset: float = 0.0,
        trace: Optional[TraceSink] = None,
        epochs: Optional[EpochScheduler] = None,
    ) -> None:
        from repro.sim.trace import NULL_TRACE

        super().__init__(sim, node_id, channel, radio, positions, rng,
                         trace=trace if trace is not None else NULL_TRACE)
        if not 0 < atim_window < beacon_interval:
            raise ConfigurationError(
                f"need 0 < atim_window < beacon_interval, got "
                f"{atim_window} / {beacon_interval}"
            )
        self.rcast = rcast
        #: bound once — called for every delivered frame and every
        #: processed announcement (millions of times at bench scale).
        self._note_heard = rcast.note_heard
        #: adaptive P_R policy (None on the fixed path: every hook below
        #: is guarded, so a fixed run executes byte-identically)
        self._adaptive = rcast.adaptive
        self.power = power_manager if power_manager is not None else AlwaysPs()
        self.beacon_interval = beacon_interval
        self.atim_window = atim_window
        if max_announcements < 1:
            raise ConfigurationError("max_announcements must be >= 1")
        self.max_announcements = max_announcements
        self.tap_in_am = tap_in_am
        self.opportunistic_tap = opportunistic_tap
        self.mode_belief_ttl = mode_belief_ttl
        if not 0 <= clock_offset < beacon_interval:
            raise ConfigurationError(
                f"clock_offset must be in [0, beacon_interval), got "
                f"{clock_offset}"
            )
        #: this node's clock error relative to true beacon time.  The paper
        #: assumes a perfect sync algorithm (Tseng et al.); a nonzero offset
        #: models residual sync error: the node's windows shift, so ATIMs
        #: from better-synchronized neighbors can miss its listening window.
        self.clock_offset = clock_offset

        self._queue = TxQueue(queue_capacity)
        self._peers: Dict[int, "PsmMac"] = {}
        # -inf until the first beacon fires: a node whose (offset) clock has
        # not started its first interval is not listening for ATIMs yet.
        self._interval_start = float("-inf")
        #: per-interval wake reasons as an ``_R_*`` bitmask
        self._reasons = 0
        #: senders whose traffic this node elected to overhear this interval
        self._overhear_senders: Set[int] = set()
        self._mode_beliefs: Dict[int, Tuple[PowerMode, float]] = {}
        self._started = False
        #: the shared epoch scheduler batches the beacon chain across all
        #: nodes on the same clock grid; a standalone MAC gets a private
        #: scheduler, which is exactly the old per-node event model
        self._epochs = epochs if epochs is not None else EpochScheduler(sim)
        self._epoch_group: Optional[_EpochGroup] = None
        #: first boundary this node participates in (set by its group);
        #: guards a recovered node against batches of the interval it
        #: missed the start of
        self._epoch_active_from = float("inf")
        #: bumped on every halt — deferred cross-window announcement events
        #: carry the epoch they were scheduled in and are dropped when it
        #: no longer matches (they predate the crash)
        self._epoch = 0
        # Statistics
        self.intervals_slept = 0
        self.intervals_awake = 0
        self.immediate_sends = 0
        self.immediate_fallbacks = 0
        self.announcements_made = 0
        self.overhear_elections = 0
        self.missed_announcements = 0

    # ------------------------------------------------------------------
    # Wiring and lifecycle
    # ------------------------------------------------------------------

    def set_peers(self, peers: Dict[int, "PsmMac"]) -> None:
        """Install the node-id -> MAC map used for ATIM delivery."""
        self._peers = peers

    def start(self) -> None:
        """Begin the synchronized beacon clock."""
        if self._started:
            return
        self._started = True
        self.radio.wake()
        self._epoch_group = self._epochs.register(self)

    def halt(self) -> None:
        """Node crash: leave the beacon grid and forget interval state.

        The crash is a cold stop — queued frames die with the node, the
        per-interval wake reasons and overhearing elections are void, and
        mode beliefs (other nodes' power states) do not survive a reboot.
        Deferred cross-window announcements already in the simulator queue
        are invalidated by bumping the epoch rather than holding handles
        to every one of them.
        """
        super().halt()
        self._epochs.deregister(self)
        self._epoch_active_from = float("inf")
        self._epoch += 1
        self._queue = TxQueue(self._queue.capacity)
        self._reasons = 0
        self._overhear_senders = set()
        self._mode_beliefs = {}
        self._interval_start = float("-inf")

    def resume(self) -> None:
        """Recover from a crash: rejoin the beacon grid at the next boundary.

        The paper's clock-sync assumption means the grid itself survives
        the crash — this node's boundaries stay at ``clock_offset + k*T``
        — so recovery waits for the next strictly-future boundary rather
        than starting a drifted private clock.  The radio stays down until
        that boundary fires (``_beacon_body`` wakes it).
        """
        super().resume()
        if not self._started:
            return
        now = self.sim.now
        interval = self.beacon_interval
        k = math.floor((now - self.clock_offset) / interval) + 1
        t = self.clock_offset + k * interval
        while t <= now:
            t += interval
        self._epoch_group = self._epochs.rejoin(self, t)

    # ------------------------------------------------------------------
    # Beacon-interval machinery
    # ------------------------------------------------------------------

    @property
    def next_boundary(self) -> float:
        """Absolute time of the next beacon boundary."""
        return self._interval_start + self.beacon_interval

    @property
    def queue_depth(self) -> int:
        """Beacon-interval queue plus the DCF pipeline (gauge)."""
        return len(self._queue) + self.dcf.queue_depth

    def _beacon_body(self, now: float) -> None:
        """Per-node beacon-boundary work (chain scheduling lives in the
        epoch group)."""
        self._interval_start = now
        self.radio.wake()
        # Stale submissions from the previous interval are NOT cancelled:
        # their expired deadline makes them complete as DEFERRED on their
        # next attempt, and cancelling would also silently kill in-flight
        # ODPM immediate sends (which carry no deadline).
        self._reasons = 0
        self._overhear_senders.clear()
        self._queue.clear_announcements()
        if self._adaptive is not None:
            self.rcast.on_epoch(now)

    def _announce_body(self) -> None:
        if not self._queue:
            return
        mode = self.power.mode(self.sim.now)
        # Ascending per-snapshot tuple: iteration order is deterministic by
        # construction (ATIM delivery schedules events), and no frozenset
        # is materialized per announce call.
        neighbors = self.positions.sorted_neighbors(self.node_id)
        # One ATIM per destination, as in the 802.11 PSM: a single
        # advertisement covers every frame buffered for that receiver, and
        # the strongest overhearing level among them is the one encoded.
        # The ATIM window is also a finite contention period, so at most
        # ``max_announcements`` destinations get through per interval —
        # a deep backlog therefore cannot wake the whole neighborhood.
        per_dst: Dict[int, List[QueuedFrame]] = {}
        for entry in self._queue:
            per_dst.setdefault(entry.frame.dst, []).append(entry)
        budget = self.max_announcements
        for dst, entries in per_dst.items():
            if budget <= 0:
                break
            budget -= 1
            best_level, best_subtype, best_kind = None, None, "data"
            for entry in entries:
                level, subtype = self.rcast.advertise(entry.frame.packet)
                if best_level is None or level.rank > best_level.rank:
                    best_level, best_subtype = level, subtype
                    best_kind = getattr(entry.frame.packet, "kind", "data")
                entry.announced = True
                entry.frame.sender_mode = mode
            announcement = Announcement(
                sender=self.node_id,
                dst=dst,
                frame_id=entries[0].frame.frame_id,
                level=best_level,
                subtype=best_subtype,
                packet_kind=best_kind,
                sender_mode=mode,
            )
            self.announcements_made += 1
            if self.trace.enabled:
                assert best_level is not None
                self.trace.emit(
                    self.sim.now, "atim", self.node_id, "advertise",
                    dst=dst, level=best_level.name, subtype=best_subtype,
                    kind=best_kind, frames=len(entries),
                )
            for neighbor in neighbors:
                peer = self._peers.get(neighbor)
                if peer is not None and peer is not self:
                    peer.on_announcement(announcement)

    def on_announcement(self, announcement: Announcement) -> None:
        """Absorb an ATIM advertisement, subject to window overlap.

        With clock error, ATIM exchange succeeds when the sender's and the
        receiver's windows *overlap* (senders retry ATIMs throughout their
        window).  The advertisement is emitted at the sender's window start:
        if that instant falls inside our current window we process it now;
        if our *next* window starts within one window-length the exchange
        succeeds there (deferred); otherwise the windows are disjoint and
        the advertisement is lost.  Perfectly synchronized nodes never miss.
        """
        if not self._started or self._halted:
            return
        delta = self.sim.now - self._interval_start
        if 0.0 <= delta < self.atim_window:
            self._process_announcement(announcement)
        elif (delta < self.beacon_interval
                and self.beacon_interval - delta < self.atim_window):
            # The tail of the sender's window reaches into our next one.
            self.sim.schedule(self.beacon_interval - delta,
                              self._process_announcement, announcement,
                              self._epoch)
        else:
            self.missed_announcements += 1

    def _process_announcement(self, announcement: Announcement,
                              epoch: Optional[int] = None) -> None:
        if epoch is not None and epoch != self._epoch:
            return  # deferred across a crash: the node that queued it died
        if announcement.sender_mode is not None:
            self._mode_beliefs[announcement.sender] = (
                announcement.sender_mode, self.sim.now,
            )
        self._note_heard(announcement.sender)
        if self._adaptive is not None:
            self._adaptive.on_announcement_heard(announcement.sender)
        if announcement.dst == self.node_id:
            self._reasons |= _R_ADDRESSED
        elif announcement.is_broadcast:
            if self.rcast.should_receive_broadcast(announcement):
                self._reasons |= _R_BROADCAST
        elif self.rcast.should_overhear(announcement):
            self._reasons |= _R_OVERHEAR
            self._overhear_senders.add(announcement.sender)
            self.overhear_elections += 1

    def _atim_fold(self, now: float) -> Tuple[int, List[QueuedFrame]]:
        """Fold power mode and pending-tx state into the wake-reason mask.

        Pure reads only: the epoch group folds every member before
        applying any member's effects, so a fold must not mutate state
        another node's apply could observe.
        """
        mask = self._reasons
        if self.power.mode(now) is PowerMode.AM:
            mask |= _R_AM
        announced = self._queue.announced_entries()
        if announced:
            mask |= _R_TX
        return mask, announced

    def _atim_sleep(self, now: float) -> None:
        """No reason to stay awake: doze until the next boundary."""
        self.intervals_slept += 1
        if self.trace.enabled:
            self.trace.emit(now, "psm", self.node_id, "sleep",
                            until=self.next_boundary)
        self.radio.sleep()

    def _atim_apply(self, now: float, mask: int,
                    announced: List[QueuedFrame]) -> None:
        """Stay awake: submit announced frames under DCF contention."""
        self.intervals_awake += 1
        if self.trace.enabled:
            self.trace.emit(now, "psm", self.node_id, "awake",
                            reasons=_REASON_STRINGS[mask],
                            queued=len(announced))
        deadline = self.next_boundary
        for entry in announced:
            self.dcf.submit(entry.frame, partial(self._on_queue_done, entry),
                            deadline=deadline)

    def _atim_end_body(self, now: float) -> None:
        mask, announced = self._atim_fold(now)
        if mask:
            self._atim_apply(now, mask, announced)
        else:
            self._atim_sleep(now)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, packet: Any, dst: int) -> None:
        """Queue for the next ATIM window, or transmit immediately when
        ODPM believes both ends are in AM."""
        now = self.sim.now
        self._note_power_event(packet)
        if (
            dst != BROADCAST
            and self.power.mode(now) is PowerMode.AM
            and self.radio.is_awake
            and self._believes_am(dst)
        ):
            frame = Frame(self.node_id, dst, packet, FrameKind.DATA,
                          sender_mode=PowerMode.AM)
            self.unicasts_sent += 1
            self.immediate_sends += 1
            self.dcf.submit(frame, self._on_immediate_done)
            return
        self._enqueue(packet, dst)

    def _enqueue(self, packet: Any, dst: int) -> None:
        if dst == BROADCAST:
            self.broadcasts_sent += 1
        else:
            self.unicasts_sent += 1
        frame = Frame(self.node_id, dst, packet, FrameKind.DATA)
        self._queue.push(QueuedFrame(
            frame, self.sim.now,
            on_failure=lambda f: self._on_dropped(f.packet),
        ))

    def _believes_am(self, dst: int) -> bool:
        belief = self._mode_beliefs.get(dst)
        if belief is None:
            return False
        mode, when = belief
        return mode is PowerMode.AM and self.sim.now - when <= self.mode_belief_ttl

    # ------------------------------------------------------------------
    # DCF completions
    # ------------------------------------------------------------------

    def _on_immediate_done(self, frame: Frame, outcome: TxOutcome,
                           delivered: Set[int]) -> None:
        if outcome is TxOutcome.DELIVERED:
            self._on_sent(frame.packet, frame.dst)
            return
        # Wrong belief (receiver asleep) or collisions: fall back to the
        # announced path — pay delay instead of declaring the link dead.
        self.immediate_fallbacks += 1
        self._mode_beliefs.pop(frame.dst, None)
        fresh = Frame(self.node_id, frame.dst, frame.packet, FrameKind.DATA)
        self._queue.push(QueuedFrame(
            fresh, self.sim.now,
            on_failure=lambda f: self._on_dropped(f.packet),
        ))

    def _on_queue_done(self, entry: QueuedFrame, frame: Frame,
                       outcome: TxOutcome, delivered: Set[int]) -> None:
        if outcome is TxOutcome.DELIVERED:
            self._queue.remove(entry)
            self._on_sent(frame.packet, frame.dst)
        elif outcome is TxOutcome.FAILED:
            self._queue.remove(entry)
            self.unicasts_failed += 1
            self._on_link_failure(frame.packet, frame.dst)
        # DEFERRED: entry stays queued and is re-announced next interval.

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    def _on_channel_receive(self, frame: Frame, sender: int) -> None:
        self._note_heard(sender)
        if frame.sender_mode is not None:
            self._mode_beliefs[sender] = (frame.sender_mode, self.sim.now)
        packet = frame.packet
        if frame.dst == self.node_id or frame.is_broadcast:
            self._note_power_event(packet)
            self._on_receive(packet, sender)
            return
        if self._may_tap(frame):
            if (self._adaptive is not None
                    and frame.src in self._overhear_senders):
                self._adaptive.on_overhear_delivered()
            self._on_promiscuous(packet, sender)

    def _may_tap(self, frame: Frame) -> bool:
        """May the routing layer use this frame addressed to someone else?"""
        if frame.src in self._overhear_senders:
            return True
        if self.opportunistic_tap:
            return True
        if self.tap_in_am and self.power.mode(self.sim.now) is PowerMode.AM:
            return True
        return False

    # ------------------------------------------------------------------
    # Power hints
    # ------------------------------------------------------------------

    def _note_power_event(self, packet: Any) -> None:
        kind = getattr(packet, "kind", None)
        if kind in ("data", "rrep"):
            self.power.note_event("data" if kind == "data" else "rrep",
                                  self.sim.now)

    def power_hint(self, kind: str) -> None:
        """Forward an upper-layer power hint to the power manager."""
        self.power.note_event(kind, self.sim.now)


__all__ = ["PsmMac"]
