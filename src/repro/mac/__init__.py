"""MAC layer: 802.11 DCF abstraction, PSM, and power-mode managers.

Three MAC personalities cover the paper's scheme matrix:

* :class:`~repro.mac.base.AlwaysOnMac` — plain IEEE 802.11 DCF, radios never
  sleep (the paper's ``802.11`` baseline).
* :class:`~repro.mac.psm.PsmMac` — IEEE 802.11 PSM with synchronized beacon
  intervals and ATIM windows.  Its overhearing behaviour is pluggable
  (none / unconditional / Rcast-randomized), and its power-mode manager is
  pluggable too (always-PS, or ODPM's event-driven AM/PS switching from
  :mod:`repro.mac.odpm`).
"""

from repro.mac.base import AlwaysOnMac, MacBase
from repro.mac.dcf import DcfTransmitter
from repro.mac.frames import BROADCAST, Announcement, Frame, FrameKind
from repro.mac.odpm import OdpmPowerManager
from repro.mac.power import AlwaysAm, AlwaysPs, PowerManager, PowerMode
from repro.mac.psm import PsmMac
from repro.mac.queue import TxQueue

__all__ = [
    "AlwaysOnMac",
    "AlwaysAm",
    "AlwaysPs",
    "Announcement",
    "BROADCAST",
    "DcfTransmitter",
    "Frame",
    "FrameKind",
    "MacBase",
    "OdpmPowerManager",
    "PowerManager",
    "PowerMode",
    "PsmMac",
    "TxQueue",
]
