"""SPAN: coordinator-based power saving (Chen, Jamieson, Morris,
Balakrishnan — MobiCom 2001), the other multihop-PSM scheme the paper's
related-work section discusses.

SPAN elects a connected backbone of *coordinators* that stay in AM; every
other node runs the plain PSM.  The paper criticizes it on two grounds this
implementation lets us measure: it "usually results in more AM nodes than
necessary and degenerates to [an] all AM-node situation when the network is
relatively sparse", and it assumes routing is handled by a scheme that can
exploit the backbone.

Implementation notes (simplifications, documented per DESIGN.md):

* The announcement/HELLO machinery SPAN uses to learn 2-hop neighborhoods
  and coordinator status is replaced by direct queries against the
  simulator's position service — the same information, without modelling
  the HELLO traffic (which would only *add* energy to SPAN).
* The election rule is Chen et al.'s: a node volunteers when two of its
  neighbors cannot reach each other directly or via one or two
  coordinators.  Volunteering is staggered by a per-node random backoff
  weighted by remaining energy and utility (how many pairs the node would
  connect), which provides the paper's rotation/fairness behaviour.
* A coordinator withdraws when every pair of its neighbors remains
  connected via other coordinators (checked with a grace period so the
  backbone does not oscillate).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set

from repro.errors import ConfigurationError
from repro.mac.power import PowerManager, PowerMode

if TYPE_CHECKING:
    from repro.mobility.manager import PositionService
    from repro.phy.energy import EnergyMeter
    from repro.sim.engine import Simulator


class SpanElection:
    """Network-wide coordinator election state (one instance per network)."""

    def __init__(
        self,
        sim: Simulator,
        positions: PositionService,
        rng: random.Random,
        election_period: float = 2.0,
        withdraw_grace: float = 5.0,
        energy_meters: Optional[Dict[int, EnergyMeter]] = None,
    ) -> None:
        if election_period <= 0 or withdraw_grace <= 0:
            raise ConfigurationError("SPAN periods must be positive")
        self.sim = sim
        self.positions = positions
        self.rng = rng
        self.election_period = election_period
        self.withdraw_grace = withdraw_grace
        self.energy_meters = energy_meters or {}
        self.coordinators: Set[int] = set()
        self._since: Dict[int, float] = {}
        self._started = False
        # Statistics
        self.elections = 0
        self.withdrawals = 0

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Schedule the per-node election checks."""
        if self._started:
            return
        self._started = True
        for node in range(self.positions.num_nodes):
            self.sim.schedule(self._jitter(node), self._check, node)

    def _jitter(self, node: int) -> float:
        """Backoff before a node's next check: energy-rich, high-utility
        nodes check (and therefore volunteer) sooner."""
        base = self.rng.uniform(0.1, self.election_period)
        meter = self.energy_meters.get(node)
        if meter is not None:
            # Lower remaining energy -> longer delay (rotation/fairness).
            base *= 1.0 + (1.0 - meter.remaining_fraction(self.sim.now))
        return base

    def is_coordinator(self, node: int) -> bool:
        """Current coordinator status of ``node``."""
        return node in self.coordinators

    @property
    def backbone_size(self) -> int:
        """Number of coordinators right now."""
        return len(self.coordinators)

    # ------------------------------------------------------------------
    # Election rule
    # ------------------------------------------------------------------

    def _pair_connected(self, u: int, w: int, via: Set[int],
                        exclude: Optional[int] = None) -> bool:
        """Can u reach w directly or through one or two coordinators?"""
        neighbors_u = self.positions.neighbors(u)
        if w in neighbors_u:
            return True
        coords = {c for c in via if c != exclude}
        neighbors_w = self.positions.neighbors(w)
        one_hop = {c for c in coords if c in neighbors_u and c in neighbors_w}
        if one_hop:
            return True
        cu = {c for c in coords if c in neighbors_u}
        cw = sorted(c for c in coords if c in neighbors_w)
        for c1 in sorted(cu):
            c1_neighbors = self.positions.neighbors(c1)
            if any(c2 in c1_neighbors for c2 in cw if c2 != c1):
                return True
        return False

    def _should_volunteer(self, node: int) -> bool:
        neighbors = self.positions.sorted_neighbors(node)
        for i, u in enumerate(neighbors):
            for w in neighbors[i + 1:]:
                if not self._pair_connected(u, w, self.coordinators):
                    return True
        return False

    def _can_withdraw(self, node: int) -> bool:
        if self.sim.now - self._since.get(node, 0.0) < self.withdraw_grace:
            return False
        neighbors = self.positions.sorted_neighbors(node)
        for i, u in enumerate(neighbors):
            for w in neighbors[i + 1:]:
                if not self._pair_connected(u, w, self.coordinators,
                                            exclude=node):
                    return False
        return True

    def _check(self, node: int) -> None:
        if node in self.coordinators:
            if self._can_withdraw(node):
                self.coordinators.discard(node)
                self.withdrawals += 1
        elif self._should_volunteer(node):
            self.coordinators.add(node)
            self._since[node] = self.sim.now
            self.elections += 1
        self.sim.schedule(self._jitter(node) + self.election_period * 0.5,
                          self._check, node)


class SpanPowerManager(PowerManager):
    """Per-node view of the election: AM while coordinator, PS otherwise."""

    def __init__(self, node_id: int, election: SpanElection) -> None:
        self.node_id = node_id
        self.election = election

    def mode(self, now: float) -> PowerMode:
        """AM while elected coordinator."""
        if self.election.is_coordinator(self.node_id):
            return PowerMode.AM
        return PowerMode.PS

    def describe(self) -> str:
        """Label with current coordinator status."""
        role = "coordinator" if self.election.is_coordinator(self.node_id) else "ps"
        return f"SPAN({role})"


__all__ = ["SpanElection", "SpanPowerManager"]
