"""Power-mode managers.

A power manager answers one question for the PSM MAC at each decision point:
*may this node sleep for the rest of the beacon interval?*  The unmodified
PSM keeps every node permanently in PS mode (:class:`AlwaysPs`); the plain
802.11 baseline is permanently active (:class:`AlwaysAm`); ODPM
(:mod:`repro.mac.odpm`) switches between the two based on communication
events.

Managers also receive *hints* from the routing/traffic layers ("a RREP went
through me", "I'm the endpoint of an active flow"), which only ODPM uses.
"""

from __future__ import annotations

from enum import Enum


class PowerMode(Enum):
    """IEEE 802.11 power-management modes."""

    AM = "active"      # active mode: awake for whole beacon intervals
    PS = "power-save"  # PS mode: awake only for ATIM windows / own traffic


class PowerManager:
    """Interface for per-node power-mode decisions."""

    def mode(self, now: float) -> PowerMode:
        """Current power-management mode."""
        raise NotImplementedError

    def note_event(self, kind: str, now: float) -> None:
        """Absorb a communication-event hint.

        ``kind`` is one of ``"rrep"``, ``"data"`` or ``"endpoint"``.  The
        default managers ignore hints.
        """

    def describe(self) -> str:
        """Short label for traces and reports."""
        return type(self).__name__


class AlwaysPs(PowerManager):
    """Permanently power-save: the unmodified-PSM and Rcast configuration."""

    def mode(self, now: float) -> PowerMode:
        """Always PS."""
        return PowerMode.PS


class AlwaysAm(PowerManager):
    """Permanently active: the plain-802.11 (no PSM) configuration."""

    def mode(self, now: float) -> PowerMode:
        """Always AM."""
        return PowerMode.AM


__all__ = ["PowerMode", "PowerManager", "AlwaysPs", "AlwaysAm"]
