"""Reproducible, named random streams.

Every source of randomness in the simulator draws from its own named stream
("mobility", "traffic", "mac", "rcast", ...).  Streams are derived
deterministically from a single scenario seed, so

* two runs with the same seed are bit-identical, and
* adding draws to one subsystem (say, an extra mobility sample) does not
  perturb any other subsystem's sequence — which keeps A/B comparisons
  between schemes honest: the mobility trace and traffic pattern seen by
  ``rcast`` and ``odpm`` under the same seed are *the same*.

Streams are :class:`random.Random` instances (cheap scalar draws dominate in
the protocol layers); a parallel numpy generator is available per stream for
vectorized work.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from ``root_seed`` and a stream name.

    Uses SHA-256 so the mapping is stable across Python versions and
    platforms (``hash()`` is salted per-process and unusable here).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class RngRegistry:
    """Factory and cache of named random streams derived from one seed."""

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}
        self._numpy_streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The scenario root seed."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the scalar RNG for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self._seed, name))
            self._streams[name] = rng
        return rng

    def numpy_stream(self, name: str) -> np.random.Generator:
        """Return the numpy generator for ``name``, creating it on first use.

        The numpy stream for a name is independent of the scalar stream of
        the same name (distinct derivation label).
        """
        rng = self._numpy_streams.get(name)
        if rng is None:
            rng = np.random.default_rng(derive_seed(self._seed, name + ":numpy"))
            self._numpy_streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per repetition of a sweep)."""
        return RngRegistry(derive_seed(self._seed, "child:" + name))

    def streams(self) -> Dict[str, random.Random]:
        """Snapshot of every scalar stream derived so far (name -> RNG).

        For introspection tooling (the determinism sanitizer's draw
        ledgers); the returned dict is a copy, the streams are the live
        objects.
        """
        return dict(self._streams)

    def numpy_streams(self) -> Dict[str, np.random.Generator]:
        """Snapshot of every numpy stream derived so far (name -> gen)."""
        return dict(self._numpy_streams)


def derived_stream(root_seed: int, name: str) -> random.Random:
    """One named stream without a registry.

    For components that allow construction without an injected stream
    (tests, ad-hoc tooling): the fallback stays seed-stable and
    stream-isolated instead of silently coupling to the process-global
    ``random`` state.
    """
    return random.Random(derive_seed(root_seed, name))


__all__ = ["RngRegistry", "derive_seed", "derived_stream"]
