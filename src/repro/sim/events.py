"""Event handles for the discrete-event kernel.

An :class:`Event` is a lightweight, cancellable record of a scheduled
callback.  Events compare by ``(time, priority, seq)`` so that

* earlier events fire first,
* among simultaneous events, lower ``priority`` fires first (the kernel uses
  this to order e.g. beacon-boundary bookkeeping before user callbacks), and
* among equal time *and* priority, insertion order is preserved (FIFO),
  which makes runs deterministic.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional, Tuple

#: Priority for kernel housekeeping that must run before normal events at the
#: same timestamp (e.g. beacon-interval boundaries).
PRIORITY_KERNEL = 0

#: Default priority for protocol events.
PRIORITY_NORMAL = 10

#: Priority for events that must observe the state left by normal events at
#: the same timestamp (e.g. metric sampling).
PRIORITY_LATE = 20

_seq_counter = itertools.count()


class Event:
    """A scheduled callback; compare-sortable and cancellable.

    Cancellation is lazy: the heap entry stays in the queue and is skipped
    when popped.  This keeps cancellation O(1), which matters because MAC
    retry timers and DSR discovery timers are cancelled far more often than
    they fire.

    The ``(time, priority, seq)`` ordering key is frozen at construction
    (``_key``): ``__lt__`` runs on every heap sift and was measurably the
    single hottest comparison in large runs when it rebuilt two tuples per
    call.  All three components are immutable after construction, so the
    precomputed key can never go stale.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled",
                 "fired", "on_cancel", "_key")

    def __init__(
        self,
        time: float,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
        priority: int = PRIORITY_NORMAL,
        on_cancel: Optional[Callable[[], None]] = None,
    ) -> None:
        seq = next(_seq_counter)
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self.on_cancel = on_cancel
        self._key = (time, priority, seq)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped.

        Cancelling an event that already fired, or cancelling twice, is a
        no-op — protocol code routinely cancels timers defensively (e.g.
        DSR cancels a discovery timer that may have just fired), and only
        genuine cancellations may reach ``on_cancel``.
        """
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self.on_cancel is not None:
            self.on_cancel()

    def fire(self) -> None:
        """Invoke the callback (kernel use only)."""
        self.fired = True
        self.callback(*self.args)

    # Heap ordering -----------------------------------------------------

    def sort_key(self) -> Tuple[float, int, int]:
        """Heap ordering key: (time, priority, insertion sequence)."""
        return self._key

    def __lt__(self, other: "Event") -> bool:
        return self._key < other._key

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.6f} prio={self.priority} {name} {state}>"


def reset_sequence_counter() -> None:
    """Reset the global FIFO tie-break counter (test isolation helper)."""
    global _seq_counter
    _seq_counter = itertools.count()


__all__ = [
    "Event",
    "PRIORITY_KERNEL",
    "PRIORITY_NORMAL",
    "PRIORITY_LATE",
    "reset_sequence_counter",
]
