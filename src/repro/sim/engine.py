"""The discrete-event simulator.

:class:`Simulator` owns the virtual clock and the event heap.  Protocol
objects schedule callbacks with :meth:`Simulator.schedule` /
:meth:`Simulator.schedule_at` and may cancel the returned handle.  ``run``
drains the heap until the horizon (or until the queue empties).

Design notes
------------
* The heap stores :class:`~repro.sim.events.Event` objects directly; lazy
  cancellation avoids O(n) heap surgery.
* Time never moves backwards.  Scheduling strictly in the past raises
  :class:`~repro.errors.SchedulingError`; scheduling *at* the current time is
  allowed (same-timestamp FIFO semantics are well defined).
* ``run`` is restartable: calling it with a later horizon resumes where the
  previous call stopped, which the experiment runner uses for periodic
  metric snapshots.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SchedulingError
from repro.sim.events import Event, PRIORITY_NORMAL


class Simulator:
    """Event-driven virtual-time scheduler."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._running = False
        self._processed = 0
        self._cancelled_pending = 0
        self._cancelled_total = 0
        self._fire_hook: Optional[Callable[[Event], None]] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events fired so far (diagnostics)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of *live* (not cancelled) events still queued.

        Lazy cancellation leaves cancelled entries in the heap until they
        are popped; this gauge subtracts them so observability consumers
        see the true pending count.
        """
        return len(self._heap) - self._cancelled_pending

    @property
    def cancelled_events(self) -> int:
        """Total events cancelled before firing (profiler diagnostics)."""
        return self._cancelled_total

    @property
    def heap_depth(self) -> int:
        """Raw heap length, cancelled entries included (profiler gauge)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------

    def set_fire_interceptor(
        self, hook: Optional[Callable[[Event], None]]
    ) -> None:
        """Install ``hook`` to dispatch events instead of ``event.fire()``.

        The hook receives each popped live event and MUST call
        ``event.fire()`` exactly once (the profiler wraps the call with
        wall-clock timing).  Pass ``None`` to restore direct dispatch.
        """
        self._fire_hook = hook

    def _note_cancel(self) -> None:
        """Event ``on_cancel`` hook: account one lazily-cancelled entry."""
        self._cancelled_pending += 1
        self._cancelled_total += 1

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` to fire at absolute time ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at t={time!r}, clock already at t={self._now!r}"
            )
        event = Event(time, callback, args, priority)
        event.on_cancel = self._note_cancel
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Fire events in order until ``until`` (inclusive) or queue empty.

        After returning, the clock sits at ``until`` if given, otherwise at
        the time of the last fired event.
        """
        if self._running:
            raise SchedulingError("Simulator.run() is not reentrant")
        self._running = True
        try:
            while self._heap:
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    self._cancelled_pending -= 1
                    continue
                self._now = event.time
                self._processed += 1
                if self._fire_hook is None:
                    event.fire()
                else:
                    self._fire_hook(event)
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Fire exactly one pending (non-cancelled) event.

        Returns ``True`` if an event fired, ``False`` if the queue is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            self._now = event.time
            self._processed += 1
            if self._fire_hook is None:
                event.fire()
            else:
                self._fire_hook(event)
            return True
        return False

    def clear(self) -> None:
        """Drop all pending events (the clock is left untouched)."""
        self._heap.clear()
        self._cancelled_pending = 0


__all__ = ["Simulator"]
