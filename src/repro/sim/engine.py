"""The discrete-event simulator.

:class:`Simulator` owns the virtual clock and the event heap.  Protocol
objects schedule callbacks with :meth:`Simulator.schedule` /
:meth:`Simulator.schedule_at` and may cancel the returned handle.  ``run``
drains the heap until the horizon (or until the queue empties).

Design notes
------------
* The heap stores ``(sort_key, Event)`` tuples rather than bare events:
  every sift comparison then resolves on the ``(time, priority, seq)``
  key tuple entirely in C (``seq`` is unique, so the comparison never
  falls through to the Event object).  A drained run performs ~10 heap
  comparisons per event, so routing them through a Python ``__lt__``
  was one of the largest single overheads in the dispatch loop.  Lazy
  cancellation avoids O(n) heap surgery.
* Time never moves backwards.  Scheduling strictly in the past raises
  :class:`~repro.errors.SchedulingError`; scheduling *at* the current time is
  allowed (same-timestamp FIFO semantics are well defined).
* ``run`` is restartable: calling it with a later horizon resumes where the
  previous call stopped, which the experiment runner uses for periodic
  metric snapshots.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SchedulingError
from repro.sim.events import Event, PRIORITY_NORMAL


class Simulator:
    """Event-driven virtual-time scheduler."""

    def __init__(self) -> None:
        #: Current virtual time in seconds.  A plain attribute, not a
        #: property: protocol code reads ``sim.now`` over a million times
        #: per bench-scale run and the descriptor call was pure overhead.
        #: It is written only by the dispatch loop — treat it as read-only.
        self.now = 0.0
        self._heap: list[tuple[tuple[float, int, int], Event]] = []
        self._running = False
        self._processed = 0
        self._cancelled_pending = 0
        self._cancelled_total = 0
        self._fire_hook: Optional[Callable[[Event], None]] = None
        #: callbacks invoked by :meth:`clear` — subsystems whose state
        #: mirrors the event queue (e.g. the fault injector) register here
        #: so a queue wipe resets their bookkeeping in the same breath.
        self._clear_hooks: list[Callable[[], None]] = []
        #: ``_note_cancel`` bound once — attaching it to every scheduled
        #: event would otherwise allocate a fresh bound method per event.
        self._note_cancel_cb = self._note_cancel

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def processed_events(self) -> int:
        """Number of events fired so far (diagnostics)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of *live* (not cancelled) events still queued.

        Lazy cancellation leaves cancelled entries in the heap until they
        are popped; this gauge subtracts them so observability consumers
        see the true pending count.
        """
        return len(self._heap) - self._cancelled_pending

    @property
    def cancelled_events(self) -> int:
        """Total events cancelled before firing (profiler diagnostics)."""
        return self._cancelled_total

    @property
    def heap_depth(self) -> int:
        """Raw heap length, cancelled entries included (profiler gauge)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------

    def set_fire_interceptor(
        self, hook: Optional[Callable[[Event], None]]
    ) -> None:
        """Install ``hook`` to dispatch events instead of ``event.fire()``.

        The hook receives each popped live event and MUST call
        ``event.fire()`` exactly once (the profiler wraps the call with
        wall-clock timing).  Pass ``None`` to restore direct dispatch.
        """
        self._fire_hook = hook

    def _note_cancel(self) -> None:
        """Event ``on_cancel`` hook: account one lazily-cancelled entry."""
        self._cancelled_pending += 1
        self._cancelled_total += 1

    def add_clear_hook(self, hook: Callable[[], None]) -> None:
        """Register ``hook`` to run whenever :meth:`clear` wipes the queue.

        For subsystems whose internal state shadows the pending schedule
        (the fault injector's counters and down-set, for example): when the
        queue those events lived in is dropped, the shadow state must be
        dropped with it or later gauges lie.  Hooks run in registration
        order and must not schedule new events.
        """
        self._clear_hooks.append(hook)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now.

        The body duplicates :meth:`schedule_at` rather than delegating: this
        is the single most-called scheduling entry point and the extra call
        frame is measurable in the dispatch-bound profiles.
        """
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r}")
        event = Event(self.now + delay, callback, args, priority,
                      self._note_cancel_cb)
        heapq.heappush(self._heap, (event._key, event))
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` to fire at absolute time ``time``."""
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule at t={time!r}, clock already at t={self.now!r}"
            )
        event = Event(time, callback, args, priority, self._note_cancel_cb)
        heapq.heappush(self._heap, (event._key, event))
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Fire events in order until ``until`` (inclusive) or queue empty.

        After returning, the clock sits at ``until`` if given, otherwise at
        the time of the last fired event.
        """
        if self._running:
            raise SchedulingError("Simulator.run() is not reentrant")
        self._running = True
        try:
            # Local bindings: this loop dispatches every event of a run, so
            # repeated attribute/global lookups are measurable overhead.
            heap = self._heap
            heappop = heapq.heappop
            # One float compare per event instead of a None test + compare.
            horizon = until if until is not None else float("inf")
            while heap:
                key, event = heap[0]
                if key[0] > horizon:
                    break
                heappop(heap)
                if event.cancelled:
                    self._cancelled_pending -= 1
                    continue
                self.now = key[0]
                # Not counted in a loop-local: the timeline recorder samples
                # ``processed_events`` from scheduled callbacks mid-run.
                self._processed += 1
                hook = self._fire_hook
                if hook is None:
                    # Inlined Event.fire(): one fewer function call on the
                    # hottest line in the system.
                    event.fired = True
                    event.callback(*event.args)
                else:
                    hook(event)
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Fire exactly one pending (non-cancelled) event.

        Returns ``True`` if an event fired, ``False`` if the queue is empty.
        """
        while self._heap:
            _, event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            self.now = event.time
            self._processed += 1
            if self._fire_hook is None:
                event.fire()
            else:
                self._fire_hook(event)
            return True
        return False

    def clear(self) -> None:
        """Drop all pending events and reset cancellation bookkeeping.

        Retained across a clear: the clock (``now``) and ``processed_events``
        — both describe history that really happened.  Reset: the heap,
        ``pending_events`` (trivially, the heap is empty) and the cancelled
        counters (``cancelled_events`` and the internal pending-cancelled
        balance).  The cancelled counters describe *queue* state, and after
        a clear the old queue no longer exists — leaving ``cancelled_events``
        at its pre-clear value made profiler gauges after a mid-run clear
        look like the fresh queue had already churned through cancellations.
        Registered clear hooks (:meth:`add_clear_hook`) run last, so
        queue-shadowing subsystems — fault-injector counters, down-sets and
        loss-process RNG positions — reset in the same operation.
        """
        self._heap.clear()
        self._cancelled_pending = 0
        self._cancelled_total = 0
        for hook in self._clear_hooks:
            hook()


__all__ = ["Simulator"]
