"""Discrete-event simulation kernel.

The kernel is deliberately tiny: a binary-heap scheduler
(:class:`~repro.sim.engine.Simulator`), typed event handles
(:class:`~repro.sim.events.Event`), reproducible named random streams
(:class:`~repro.sim.rng.RngRegistry`) and an optional trace sink
(:class:`~repro.sim.trace.TraceLog`).
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog

__all__ = ["Simulator", "Event", "RngRegistry", "TraceLog"]
