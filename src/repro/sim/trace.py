"""Structured trace records and the in-process trace sinks.

The simulator core never prints.  Components emit typed records —
``(time, category, node, event, **fields)`` — into a trace sink when one is
attached; tests attach a :class:`TraceLog` to assert on protocol behaviour,
and the CLI can stream records to JSONL for offline analysis (see
:mod:`repro.obs.sinks`).  By default tracing is disabled (a
:class:`NullTrace` is used), which costs a single attribute lookup plus a
short-circuited ``if`` per emission point.

Categories name the emitting subsystem (``atim``, ``psm``, ``odpm``,
``dsr``, ``dcf``, ``chan``, ``energy``); the ``event`` names what happened
inside it; ``fields`` carry the typed key/value payload.  Field values must
be JSON-representable scalars (str/int/float/bool/None) so records
serialize deterministically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Protocol, Tuple

#: One typed key/value payload entry (kept as a tuple so records hash).
FieldItems = Tuple[Tuple[str, object], ...]

#: Every category an emission point may use.  The CLI validates
#: ``--trace-categories`` against this set so a typo fails fast instead of
#: silently producing an empty trace.
TRACE_CATEGORIES: Tuple[str, ...] = (
    "adaptive", "atim", "chan", "dcf", "dsr", "energy", "fault", "odpm",
    "psm", "sanitizer",
)


@dataclass(frozen=True)
class TraceRecord:
    """One structured trace record."""

    time: float
    category: str
    node: int
    event: str
    fields: FieldItems = ()

    def get(self, key: str, default: object = None) -> object:
        """Value of payload field ``key`` (or ``default``)."""
        for name, value in self.fields:
            if name == key:
                return value
        return default

    @property
    def detail(self) -> str:
        """Rendered ``event k=v ...`` payload (legacy one-line form)."""
        if not self.fields:
            return self.event
        kv = " ".join(f"{k}={v}" for k, v in self.fields)
        return f"{self.event} {kv}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict with a stable key order."""
        return {
            "time": self.time,
            "category": self.category,
            "node": self.node,
            "event": self.event,
            "fields": {k: v for k, v in self.fields},
        }

    def to_json(self) -> str:
        """One deterministic JSON line (same record -> same bytes)."""
        return json.dumps(self.to_dict(), separators=(",", ":"),
                          sort_keys=False, default=str)

    def __str__(self) -> str:
        return (f"{self.time:12.6f} [{self.category:>8}] "
                f"n{self.node:<4} {self.detail}")


class TraceSink(Protocol):
    """Structural interface every trace sink provides.

    Emission points check ``enabled`` before assembling the field payload
    so a disabled sink costs one attribute lookup, not a dict build.
    """

    @property
    def enabled(self) -> bool: ...  # noqa: D102

    def emit(self, time: float, category: str, node: int, event: str,
             **fields: object) -> None: ...  # noqa: D102


def matches(
    record: TraceRecord,
    category: Optional[str] = None,
    node: Optional[int] = None,
    t_min: Optional[float] = None,
    t_max: Optional[float] = None,
) -> bool:
    """Shared record predicate used by :meth:`TraceLog.filter` and sinks.

    ``t_min``/``t_max`` bound the record time (both inclusive, either open).
    """
    if category is not None and record.category != category:
        return False
    if node is not None and record.node != node:
        return False
    if t_min is not None and record.time < t_min:
        return False
    if t_max is not None and record.time > t_max:
        return False
    return True


class TraceLog:
    """In-memory trace collector with filtering helpers."""

    def __init__(self, categories: Optional[Iterable[str]] = None) -> None:
        self._records: List[TraceRecord] = []
        self._categories = set(categories) if categories is not None else None

    @property
    def enabled(self) -> bool:
        """Trace sinks report enabled=True; NullTrace reports False."""
        return True

    def emit(self, time: float, category: str, node: int, event: str,
             **fields: object) -> None:
        """Record a trace event (filtered by category when a filter is set)."""
        if self._categories is not None and category not in self._categories:
            return
        self._records.append(
            TraceRecord(time, category, node, event, tuple(fields.items()))
        )

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def filter(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        t_min: Optional[float] = None,
        t_max: Optional[float] = None,
    ) -> List[TraceRecord]:
        """Records matching the category/node/time-window constraints."""
        return [rec for rec in self._records
                if matches(rec, category, node, t_min, t_max)]

    def dump(self) -> str:
        """Render all records, one per line."""
        return "\n".join(str(rec) for rec in self._records)


class NullTrace:
    """No-op trace sink used when tracing is disabled."""

    enabled = False

    def emit(self, time: float, category: str, node: int, event: str,
             **fields: object) -> None:
        """Discard the record."""

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(())

    def filter(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        t_min: Optional[float] = None,
        t_max: Optional[float] = None,
    ) -> List[TraceRecord]:
        """Always empty."""
        return []

    def dump(self) -> str:
        """Always empty."""
        return ""


#: Shared singleton used as the default trace sink.
NULL_TRACE = NullTrace()

__all__ = [
    "FieldItems",
    "TRACE_CATEGORIES",
    "TraceRecord",
    "TraceSink",
    "TraceLog",
    "NullTrace",
    "NULL_TRACE",
    "matches",
]
