"""Structured trace sink for debugging and tests.

The simulator core never prints.  Components emit ``(time, category, node,
detail)`` records into a :class:`TraceLog` when one is attached; tests attach
one to assert on protocol behaviour, and the CLI can dump it for inspection.
By default tracing is disabled (a :class:`NullTrace` is used), which costs a
single attribute lookup plus a no-op call per emission point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Protocol


@dataclass(frozen=True)
class TraceRecord:
    """One trace line."""

    time: float
    category: str
    node: int
    detail: str

    def __str__(self) -> str:
        return f"{self.time:12.6f} [{self.category:>10}] n{self.node:<4} {self.detail}"


class TraceSink(Protocol):
    """Structural interface every trace sink provides.

    Emission points check ``enabled`` before formatting the detail string so
    a disabled sink costs one attribute lookup, not an f-string.
    """

    @property
    def enabled(self) -> bool: ...  # noqa: D102

    def emit(self, time: float, category: str, node: int, detail: str) -> None: ...  # noqa: D102


class TraceLog:
    """In-memory trace collector with simple filtering helpers."""

    def __init__(self, categories: Optional[Iterable[str]] = None) -> None:
        self._records: List[TraceRecord] = []
        self._categories = set(categories) if categories is not None else None

    @property
    def enabled(self) -> bool:
        """Trace sinks report enabled=True; NullTrace reports False."""
        return True

    def emit(self, time: float, category: str, node: int, detail: str) -> None:
        """Record a trace line (filtered by category when a filter is set)."""
        if self._categories is not None and category not in self._categories:
            return
        self._records.append(TraceRecord(time, category, node, detail))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def filter(self, category: Optional[str] = None, node: Optional[int] = None) -> List[TraceRecord]:  # noqa: D102
        """Return records matching the given category and/or node."""
        out = []
        for rec in self._records:
            if category is not None and rec.category != category:
                continue
            if node is not None and rec.node != node:
                continue
            out.append(rec)
        return out

    def dump(self) -> str:
        """Render all records, one per line."""
        return "\n".join(str(rec) for rec in self._records)


class NullTrace:
    """No-op trace sink used when tracing is disabled."""

    enabled = False

    def emit(self, time: float, category: str, node: int, detail: str) -> None:
        """Discard the record."""

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(())

    def filter(self, category: Optional[str] = None,
               node: Optional[int] = None) -> List[TraceRecord]:
        """Always empty."""
        return []

    def dump(self) -> str:
        """Always empty."""
        return ""


#: Shared singleton used as the default trace sink.
NULL_TRACE = NullTrace()

__all__ = ["TraceRecord", "TraceSink", "TraceLog", "NullTrace", "NULL_TRACE"]
