"""Extension experiment: SPAN vs Rcast across network density.

The paper's related-work critique of SPAN (Section 2.2.2): "it usually
results in more AM nodes than necessary and degenerates to [an] all
AM-node situation when the network is relatively sparse".  This experiment
measures exactly that: the same node count spread over wider arenas
(sparser networks), comparing SPAN's coordinator backbone against Rcast
and ODPM on energy and the fraction of always-on nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.experiments.parallel import parallel_map, run_grid
from repro.experiments.runner import AggregateMetrics, aggregate
from repro.experiments.scenarios import ExperimentScale, make_config
from repro.metrics.report import format_table
from repro.network import build_network

SCHEMES = ("span", "odpm", "rcast")

#: arena-width multipliers: 1.0 = the paper's density, larger = sparser
DENSITY_FACTORS = (1.0, 1.6, 2.2)


@dataclass
class SpanStudyResult:
    """Aggregates per (scheme, density factor) plus backbone sizes."""

    scale_name: str
    rate: float
    cells: Dict[Tuple[str, float], AggregateMetrics]
    #: mean SPAN backbone size per density factor (coordinators at end)
    backbone: Dict[float, float]
    num_nodes: int


def _measure_backbone(args: Tuple[ExperimentScale, float, int]) -> float:
    """Run one SPAN network and report its final coordinator count."""
    scale, factor, seed = args
    config = make_config(
        scale, "span", scale.low_rate, mobile=False, seed=seed,
        arena_w=scale.arena_w * factor,
    )
    network = build_network(config)
    network.run()
    return float(network.span_election.backbone_size)


def run(scale: ExperimentScale, seed: int = 1, progress: Optional[Callable[[str], None]] = None,
        workers: Optional[int] = None) -> SpanStudyResult:
    """Run the density sweep (static scenario, low rate)."""
    configs = {
        (scheme, factor): make_config(
            scale, scheme, scale.low_rate, mobile=False, seed=seed,
            arena_w=scale.arena_w * factor,
        )
        for factor in DENSITY_FACTORS for scheme in SCHEMES
    }
    grid = run_grid(configs, scale.repetitions, workers=workers)
    cells: Dict[Tuple[str, float], AggregateMetrics] = {}
    for key in configs:
        cells[key] = aggregate(grid[key])
        if progress is not None:
            progress(f"x{key[1]} {key[0]}: {cells[key].describe()}")
    sizes = parallel_map(
        _measure_backbone,
        [(scale, factor, seed) for factor in DENSITY_FACTORS],
        workers=workers,
    )
    backbone = dict(zip(DENSITY_FACTORS, sizes))
    return SpanStudyResult(scale.name, scale.low_rate, cells, backbone,
                           scale.num_nodes)


def format_result(result: SpanStudyResult) -> str:
    """Energy table across densities plus the backbone-size row."""
    rows = []
    for factor in DENSITY_FACTORS:
        row = [f"x{factor}"]
        for scheme in SCHEMES:
            row.append(result.cells[(scheme, factor)].total_energy)
        row.append(f"{result.backbone[factor]:.0f}/{result.num_nodes}")
        rows.append(row)
    table = format_table(
        ["arena width"] + [f"{s} E [J]" for s in SCHEMES]
        + ["SPAN backbone"],
        rows,
        title=(f"SPAN vs Rcast across density (static, "
               f"rate={result.rate} pkt/s; wider arena = sparser)"),
    )
    return table + (
        "\nPaper's critique: as the network sparsens, SPAN's backbone "
        "swells toward all-AM while Rcast's cost stays density-insensitive."
    )


__all__ = ["SpanStudyResult", "run", "format_result", "SCHEMES",
           "DENSITY_FACTORS"]
