"""Experiment scales and scenario construction.

The paper's setup (Section 4.1): 100 nodes in 1500 x 300 m², 250 m range,
2 Mbps, 20 CBR connections at 0.2-2.0 pkt/s with 512-byte packets, random
waypoint at up to 20 m/s with pause times 600 s (mobile) and 1125 s
(static), 1125 s simulated, 10 repetitions.

``PAPER_SCALE`` reproduces that exactly.  ``BENCH_SCALE`` keeps the node
count, density and traffic structure but shortens the simulated time and
repetition count so the whole benchmark suite completes in minutes; all the
paper's *relative* results (who wins, by what factor) are preserved because
both energy and traffic scale linearly in simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.network import SimulationConfig
from repro.sim.rng import derive_seed


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade fidelity for wall-clock time."""

    name: str
    num_nodes: int
    arena_w: float
    arena_h: float
    sim_time: float
    num_connections: int
    repetitions: int
    #: packet rates used by the rate sweeps (paper: 0.2 .. 2.0)
    rates: Tuple[float, ...]
    #: the two focus rates of Figs. 5 and 9
    low_rate: float = 0.4
    high_rate: float = 2.0
    #: pause times: mobile and static (static == sim_time in the paper)
    mobile_pause: float = 600.0
    #: maximum node speed for the mobile scenario.  The paper uses 20 m/s
    #: with a 600 s pause over 1125 s — nodes move only ~8% of the time, an
    #: *effective* average speed below 1 m/s.  Short bench runs cannot
    #: reproduce a 600 s pause cycle, so they instead lower the speed to
    #: match the paper's effective link-churn rate.
    mobile_max_speed: float = 20.0

    @property
    def static_pause(self) -> float:
        """Pause time that makes random waypoint effectively static."""
        return self.sim_time

    def pause_times(self) -> Tuple[float, float]:
        """(mobile, static) pause times, clipped to the simulated time."""
        return (min(self.mobile_pause, self.sim_time), self.static_pause)


#: Exact paper parameters (hours of CPU for the full figure set).
PAPER_SCALE = ExperimentScale(
    name="paper",
    num_nodes=100, arena_w=1500.0, arena_h=300.0,
    sim_time=1125.0, num_connections=20, repetitions=10,
    rates=(0.2, 0.4, 0.8, 1.2, 1.6, 2.0),
    mobile_pause=600.0,
)

#: Shape-preserving scale for the benchmark suite (same topology/density,
#: shorter simulated time, fewer repetitions and sweep points).
BENCH_SCALE = ExperimentScale(
    name="bench",
    num_nodes=100, arena_w=1500.0, arena_h=300.0,
    sim_time=120.0, num_connections=20, repetitions=2,
    rates=(0.2, 0.4, 1.2, 2.0),
    mobile_pause=0.0, mobile_max_speed=2.0,
)

#: Tiny scale for unit/integration tests.
SMOKE_SCALE = ExperimentScale(
    name="smoke",
    num_nodes=30, arena_w=800.0, arena_h=300.0,
    sim_time=40.0, num_connections=5, repetitions=1,
    rates=(0.4, 2.0),
    mobile_pause=0.0, mobile_max_speed=2.0,
)


def make_config(
    scale: ExperimentScale,
    scheme: str,
    rate: float,
    mobile: bool,
    seed: int = 1,
    **overrides: Any,
) -> SimulationConfig:
    """Build a :class:`SimulationConfig` for one point of an experiment.

    ``mobile=True`` is the paper's T_pause = 600 s scenario (random
    waypoint); ``mobile=False`` is the static scenario (T_pause = 1125 s —
    nodes never leave their initial uniform placement).
    """
    params: Dict[str, Any] = dict(
        scheme=scheme,
        seed=seed,
        sim_time=scale.sim_time,
        num_nodes=scale.num_nodes,
        arena_w=scale.arena_w,
        arena_h=scale.arena_h,
        num_connections=scale.num_connections,
        packet_rate=rate,
    )
    if mobile:
        params.update(
            mobility="waypoint",
            max_speed=scale.mobile_max_speed,
            pause_time=min(scale.mobile_pause, scale.sim_time),
        )
    else:
        params.update(mobility="static")
    params.update(overrides)
    return SimulationConfig(**params)


def replication_seed(base_seed: int, repetition: int) -> int:
    """Stable derived seed for repetition ``repetition``."""
    return derive_seed(base_seed, f"rep:{repetition}")


__all__ = [
    "ExperimentScale",
    "PAPER_SCALE",
    "BENCH_SCALE",
    "SMOKE_SCALE",
    "make_config",
    "replication_seed",
]
