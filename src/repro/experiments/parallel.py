"""Parallel execution of replication grids across worker processes.

The paper's evaluation is 10 repetitions per cell over a
(scheme x rate x scenario) grid; every replication is independent by
construction (deterministic derived seeds, independent named RNG streams
per :mod:`repro.sim.rng`), which makes the whole campaign embarrassingly
parallel.  This module shards (cell x repetition) work items across a
process pool and reassembles results **in deterministic order** — results
are keyed by ``(cell, rep)``, never by completion order, so the same seed
produces bit-identical :class:`~repro.experiments.runner.AggregateMetrics`
regardless of worker count.

Layering:

* :class:`ParallelRunner` — the pool itself: ``max_workers`` (default
  ``os.cpu_count()``), ``max_workers=1`` falls back to the exact serial
  path (no pool, submission-order execution);
* :func:`run_grid` — run every cell of a ``{cell: config}`` mapping for
  ``repetitions`` derived-seed replications, returning per-cell
  rep-ordered :class:`~repro.metrics.collector.RunMetrics` lists;
* :func:`parallel_map` — order-preserving process-pool map for study
  modules whose unit of work is not a plain replication;
* :class:`ProgressEvent` / :class:`RunnerStats` — structured progress
  (per-cell start/finish, elapsed wall-clock, worker utilization).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

from repro.metrics.collector import RunMetrics
from repro.network import SimulationConfig, run_simulation
from repro.obs.manifest import RunManifest, config_hash
from repro.experiments.scenarios import replication_seed

#: Grid cell key.  Generic (rather than plain ``Hashable``) so callers keep
#: their concrete key type — ``Mapping`` is invariant in its key parameter.
CellT = TypeVar("CellT", bound=Hashable)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` knob: ``None`` -> 1 (serial), 0 -> all cores.

    Experiment entry points default to ``workers=None`` so existing callers
    keep the serial behaviour; ``workers=0`` means "use every core"
    (``os.cpu_count()``), matching the CLI's ``--workers 0``.
    """
    if workers is None:
        return 1
    workers = int(workers)
    if workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def replication_config(config: SimulationConfig, rep: int) -> SimulationConfig:
    """The exact config replication ``rep`` runs: base config + derived seed.

    Both the serial path (:func:`repro.experiments.runner.run_replications`)
    and the worker processes go through this function, so the per-rep seeds
    are identical no matter where a replication executes.
    """
    return replace(config, seed=replication_seed(config.seed, rep))


@dataclass(frozen=True)
class WorkItem:
    """One (cell, repetition) unit of a replication grid."""

    cell: Hashable
    rep: int
    config: SimulationConfig


@dataclass(frozen=True)
class RunnerStats:
    """Wall-clock accounting of one grid execution."""

    workers: int
    items: int
    elapsed: float      # wall-clock seconds, submission to last result
    busy: float         # summed per-item execution time across workers

    @property
    def utilization(self) -> float:
        """Fraction of worker capacity kept busy (1.0 = perfect scaling)."""
        capacity = self.elapsed * self.workers
        if capacity <= 0.0:
            return 0.0
        return self.busy / capacity


@dataclass(frozen=True)
class ProgressEvent:
    """Structured progress notification from a grid execution.

    ``kind`` is one of:

    * ``"cell-start"`` — the first replication of ``cell`` was dispatched
      (serial mode: is about to run; pool mode: was submitted);
    * ``"rep-finish"`` — one replication completed; ``manifest`` carries
      its provenance (seed, config hash, wall time, events processed);
    * ``"cell-finish"`` — the last replication of ``cell`` completed;
    * ``"grid-finish"`` — every item completed; ``stats`` is populated.
    """

    kind: str
    cell: Hashable = None
    completed_items: int = 0
    total_items: int = 0
    elapsed: float = 0.0
    stats: Optional[RunnerStats] = None
    manifest: Optional[RunManifest] = None


ProgressCallback = Callable[[ProgressEvent], None]


def _run_work_item(
    item: WorkItem,
) -> Tuple[Hashable, int, RunMetrics, RunManifest]:
    """Worker entry point: run one replication, report its manifest."""
    started = time.perf_counter()
    config = replication_config(item.config, item.rep)
    metrics = run_simulation(config)
    manifest = RunManifest(
        scheme=config.scheme,
        seed=config.seed,
        config_hash=config_hash(config),
        wall_time=time.perf_counter() - started,
        events_processed=metrics.events_processed,
        cell=str(item.cell),
        rep=item.rep,
        fault_counts=metrics.fault_counts or None,
    )
    return item.cell, item.rep, metrics, manifest


def _call_indexed(args: Tuple[Callable[[Any], Any], int, Any]) -> Tuple[int, Any]:
    """Worker entry point for :func:`parallel_map` (preserves input index)."""
    fn, index, item = args
    return index, fn(item)


class ParallelRunner:
    """Process-pool executor for replication grids.

    ``max_workers=None`` uses every core (``os.cpu_count()``);
    ``max_workers=1`` executes items serially in submission order with no
    pool — the exact pre-parallel code path.  After each :meth:`run_grid`
    the wall-clock/utilization accounting is available as ``last_stats``.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 on_event: Optional[ProgressCallback] = None) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        max_workers = int(max_workers)
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.on_event = on_event
        self.last_stats: Optional[RunnerStats] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run_grid(self, configs: Mapping[CellT, SimulationConfig],
                 repetitions: int) -> Dict[CellT, List[RunMetrics]]:
        """Run ``repetitions`` derived-seed replications of every cell.

        Returns ``{cell: [RunMetrics, ...]}`` with the inner list in
        repetition order (index ``rep`` ran with seed
        ``replication_seed(config.seed, rep)``), independent of the order
        in which workers finished.
        """
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        items = [
            WorkItem(cell, rep, config)
            for cell, config in configs.items()
            for rep in range(repetitions)
        ]
        if self.max_workers == 1:
            results = self._execute_serial(items)
        else:
            results = self._execute_pool(items)
        return {
            cell: [results[(cell, rep)] for rep in range(repetitions)]
            for cell in configs
        }

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------

    def _execute_serial(
        self, items: Sequence[WorkItem]
    ) -> Dict[Tuple[Hashable, int], RunMetrics]:
        started = time.perf_counter()
        busy = 0.0
        remaining = _per_cell_counts(items)
        seen_cells: Set[Hashable] = set()
        results: Dict[Tuple[Hashable, int], RunMetrics] = {}
        for completed, item in enumerate(items):
            if item.cell not in seen_cells:
                seen_cells.add(item.cell)
                self._emit("cell-start", item.cell, completed, len(items),
                           started)
            cell, rep, metrics, manifest = _run_work_item(item)
            busy += manifest.wall_time
            results[(cell, rep)] = metrics
            remaining[cell] -= 1
            self._emit("rep-finish", cell, completed + 1, len(items),
                       started, manifest=manifest)
            if remaining[cell] == 0:
                self._emit("cell-finish", cell, completed + 1, len(items),
                           started)
        self._finish(started, busy, len(items))
        return results

    def _execute_pool(
        self, items: Sequence[WorkItem]
    ) -> Dict[Tuple[Hashable, int], RunMetrics]:
        started = time.perf_counter()
        busy = 0.0
        remaining = _per_cell_counts(items)
        results: Dict[Tuple[Hashable, int], RunMetrics] = {}
        completed = 0
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            pending: Set[
                "Future[Tuple[Hashable, int, RunMetrics, RunManifest]]"
            ] = set()
            seen_cells: Set[Hashable] = set()
            for item in items:
                if item.cell not in seen_cells:
                    seen_cells.add(item.cell)
                    self._emit("cell-start", item.cell, completed,
                               len(items), started)
                pending.add(pool.submit(_run_work_item, item))
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    cell, rep, metrics, manifest = future.result()
                    busy += manifest.wall_time
                    completed += 1
                    results[(cell, rep)] = metrics
                    remaining[cell] -= 1
                    self._emit("rep-finish", cell, completed, len(items),
                               started, manifest=manifest)
                    if remaining[cell] == 0:
                        self._emit("cell-finish", cell, completed,
                                   len(items), started)
        self._finish(started, busy, len(items))
        return results

    # ------------------------------------------------------------------
    # Progress plumbing
    # ------------------------------------------------------------------

    def _emit(self, kind: str, cell: Hashable, completed: int, total: int,
              started: float, stats: Optional[RunnerStats] = None,
              manifest: Optional[RunManifest] = None) -> None:
        if self.on_event is None:
            return
        self.on_event(ProgressEvent(
            kind=kind, cell=cell, completed_items=completed,
            total_items=total, elapsed=time.perf_counter() - started,
            stats=stats, manifest=manifest,
        ))

    def _finish(self, started: float, busy: float, items: int) -> None:
        self.last_stats = RunnerStats(
            workers=self.max_workers, items=items,
            elapsed=time.perf_counter() - started, busy=busy,
        )
        self._emit("grid-finish", None, items, items, started,
                   stats=self.last_stats)


def _per_cell_counts(items: Sequence[WorkItem]) -> Dict[Hashable, int]:
    counts: Dict[Hashable, int] = {}
    for item in items:
        counts[item.cell] = counts.get(item.cell, 0) + 1
    return counts


def run_grid(
    configs: Mapping[CellT, SimulationConfig],
    repetitions: int,
    workers: Optional[int] = None,
    on_event: Optional[ProgressCallback] = None,
) -> Dict[CellT, List[RunMetrics]]:
    """Run a ``{cell: config}`` grid, ``repetitions`` replications per cell.

    ``workers`` follows :func:`resolve_workers` semantics (``None`` -> 1,
    ``0`` -> all cores).  Output order is deterministic regardless of
    worker count.
    """
    runner = ParallelRunner(max_workers=resolve_workers(workers),
                            on_event=on_event)
    return runner.run_grid(configs, repetitions)


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    workers: Optional[int] = None,
) -> List[Any]:
    """Order-preserving map over ``items``, optionally across processes.

    ``fn`` must be a module-level (picklable) callable.  ``workers=None``
    or 1 runs serially in-process; results always come back in input order.
    """
    items = list(items)
    n_workers = resolve_workers(workers)
    if n_workers == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    results: List[Any] = [None] * len(items)
    with ProcessPoolExecutor(max_workers=min(n_workers, len(items))) as pool:
        for index, value in pool.map(
            _call_indexed, [(fn, i, item) for i, item in enumerate(items)]
        ):
            results[index] = value
    return results


__all__ = [
    "ParallelRunner",
    "ProgressEvent",
    "RunnerStats",
    "WorkItem",
    "parallel_map",
    "replication_config",
    "resolve_workers",
    "run_grid",
]
