"""Export experiment results to JSON/CSV for external plotting.

The benchmark harness prints text tables; this module serializes the same
data structurally so downstream users can regenerate the paper's figures
with their plotting tool of choice.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np
from numpy.typing import NDArray

from repro.experiments.runner import AggregateMetrics
from repro.experiments.sweep import SweepResult

PathLike = Union[str, Path]


def _vector(value: Optional[NDArray[np.float64]]) -> Optional[List[float]]:
    """Explicit ndarray -> list encoding; ``None`` stays ``None``."""
    if value is None:
        return None
    return [float(v) for v in np.asarray(value).ravel()]

#: scalar fields of AggregateMetrics exported per cell
SCALAR_FIELDS = (
    "total_energy", "total_energy_ci",
    "energy_variance", "energy_variance_ci",
    "pdr", "pdr_ci",
    "avg_delay", "avg_delay_ci",
    "energy_per_bit", "energy_per_bit_ci",
    "normalized_overhead", "normalized_overhead_ci",
)


def aggregate_to_dict(agg: AggregateMetrics) -> Dict[str, Any]:
    """JSON-safe dict of one aggregate (vectors included)."""
    out: Dict[str, Any] = {"scheme": agg.scheme,
                           "repetitions": agg.repetitions}
    for field in SCALAR_FIELDS:
        value = getattr(agg, field)
        out[field] = None if not np.isfinite(value) else float(value)
    out["sorted_node_energy"] = _vector(agg.sorted_node_energy)
    out["role_numbers"] = _vector(agg.role_numbers)
    out["node_energy"] = _vector(agg.node_energy)
    out["dropped_replications"] = dict(agg.dropped_replications)
    return out


def sweep_to_dict(result: SweepResult) -> Dict[str, Any]:
    """JSON-safe dict of a full sweep grid.

    ``replications`` carries one manifest per (cell, rep) — seed, config
    hash, events processed, plus the measured wall time and events/sec —
    so benchmark trajectories can be seeded from real runs.  Wall times
    are measurements and differ run to run; everything else in the export
    is deterministic.
    """
    cells: List[Dict[str, Any]] = []
    for (scheme, rate, mobile), agg in sorted(
        result.cells.items(), key=lambda kv: (kv[0][2], kv[0][1], kv[0][0])
    ):
        cell = aggregate_to_dict(agg)
        cell.update(rate=rate, mobile=mobile)
        cells.append(cell)
    return {
        "scale": result.scale_name,
        "schemes": list(result.schemes),
        "rates": list(result.rates),
        "scenarios": ["mobile" if m else "static" for m in result.scenarios],
        "cells": cells,
        "replications": [m.to_dict() for m in result.manifests],
    }


def write_sweep_json(result: SweepResult, path: PathLike) -> Path:
    """Serialize a sweep to JSON; returns the written path."""
    path = Path(path)
    path.write_text(json.dumps(sweep_to_dict(result), indent=2))
    return path


def write_sweep_csv(result: SweepResult, path: PathLike) -> Path:
    """Serialize a sweep's scalar metrics to CSV; returns the written path."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["scheme", "rate", "scenario"] + list(SCALAR_FIELDS))
        for (scheme, rate, mobile), agg in sorted(
            result.cells.items(), key=lambda kv: (kv[0][2], kv[0][1], kv[0][0])
        ):
            row = [scheme, rate, "mobile" if mobile else "static"]
            for field in SCALAR_FIELDS:
                value = getattr(agg, field)
                row.append("" if not np.isfinite(value) else f"{value:.10g}")
            writer.writerow(row)
    return path


def load_sweep_json(path: PathLike) -> Dict[str, Any]:
    """Read back a JSON export (plain dict; no object reconstruction)."""
    loaded: Dict[str, Any] = json.loads(Path(path).read_text())
    return loaded


def result_to_jsonable(obj: Any) -> Any:
    """Recursively convert any experiment result object to JSON-safe data.

    Handles dataclasses (including the per-figure result types), numpy
    arrays and scalars, dicts with non-string keys (stringified), and
    non-finite floats (``None`` — JSON has no inf/nan).  This is the
    generic encoder behind the CLI's ``--json-out``; the structured sweep
    export (:func:`sweep_to_dict`) remains the stable schema for sweeps.
    """
    if isinstance(obj, AggregateMetrics):
        return aggregate_to_dict(obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: result_to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, np.ndarray):
        return [result_to_jsonable(v) for v in obj.tolist()]
    if isinstance(obj, (np.floating, float)):
        value = float(obj)
        return value if np.isfinite(value) else None
    if isinstance(obj, (np.integer, int)) and not isinstance(obj, bool):
        return int(obj)
    if isinstance(obj, dict):
        return {
            (key if isinstance(key, str) else str(key)):
                result_to_jsonable(value)
            for key, value in obj.items()
        }
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [result_to_jsonable(v) for v in obj]
    return obj


def write_result_json(result: Any, path: PathLike) -> Path:
    """Serialize any experiment result via :func:`result_to_jsonable`."""
    path = Path(path)
    path.write_text(json.dumps(result_to_jsonable(result), indent=2))
    return path


__all__ = [
    "SCALAR_FIELDS",
    "aggregate_to_dict",
    "sweep_to_dict",
    "write_sweep_json",
    "write_sweep_csv",
    "load_sweep_json",
    "result_to_jsonable",
    "write_result_json",
]
