"""Extension experiment: the stale-route problem (paper Section 2.1.2).

The paper claims "it is unconditional overhearing that dramatically
aggravates the [stale route] problem": overheard alternative routes pile
up unvalidated in many caches, outliving the links they contain.  This
experiment runs the overhearing spectrum in the same mobile scenario and
audits every route cache against ground-truth connectivity at the end of
the run.

Expected shape: unconditional overhearing (``psm``) holds the most cached
paths and the highest stale fraction; Rcast holds a moderate set with a
lower stale fraction; no-overhearing holds the fewest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.analysis.staleness import StalenessReport, audit_staleness
from repro.experiments.parallel import parallel_map
from repro.experiments.scenarios import ExperimentScale, make_config
from repro.metrics.report import format_table
from repro.network import build_network

SCHEMES = ("psm", "rcast", "psm-nooh")


def _audit_scheme(
    args: Tuple[ExperimentScale, str, int]
) -> Tuple[StalenessReport, float]:
    """Run one scheme's network and audit its caches (worker entry point)."""
    scale, scheme, seed = args
    config = make_config(scale, scheme, scale.low_rate, mobile=True,
                         seed=seed)
    network = build_network(config)
    metrics = network.run()
    return audit_staleness(network), metrics.pdr


@dataclass
class StalenessStudyResult:
    """Staleness audits per scheme (mobile scenario)."""

    scale_name: str
    rate: float
    reports: Dict[str, StalenessReport]
    pdr: Dict[str, float]


def run(scale: ExperimentScale, seed: int = 1,
        progress: Optional[Callable[[str], None]] = None,
        workers: Optional[int] = None) -> StalenessStudyResult:
    """Run the overhearing spectrum and audit caches (mobile, low rate)."""
    audits = parallel_map(
        _audit_scheme,
        [(scale, scheme, seed) for scheme in SCHEMES],
        workers=workers,
    )
    reports: Dict[str, StalenessReport] = {}
    pdr: Dict[str, float] = {}
    for scheme, (report, scheme_pdr) in zip(SCHEMES, audits):
        reports[scheme] = report
        pdr[scheme] = scheme_pdr
        if progress is not None:
            progress(f"{scheme}: {reports[scheme].describe()}")
    return StalenessStudyResult(scale.name, scale.low_rate, reports, pdr)


def format_result(result: StalenessStudyResult) -> str:
    """Cached-path counts and stale fractions per scheme."""
    rows = []
    for scheme in SCHEMES:
        report = result.reports[scheme]
        rows.append([
            scheme, report.total_entries, report.stale_entries,
            report.stale_fraction * 100.0,
            report.stale_fraction_of("overhear") * 100.0,
            result.pdr[scheme] * 100.0,
        ])
    table = format_table(
        ["scheme", "cached paths", "stale", "stale [%]",
         "stale among overheard [%]", "PDR [%]"],
        rows,
        title=(f"Stale-route audit (mobile, rate={result.rate} pkt/s, "
               "end of run, vs ground-truth connectivity)"),
    )
    return table + (
        "\nPaper §2.1.2: unconditional overhearing seeds many caches with"
        "\nalternative routes that go stale unvalidated; Rcast keeps the"
        "\ncache population — and its rot — proportionally smaller."
    )


__all__ = ["StalenessStudyResult", "run", "format_result", "SCHEMES"]
