"""Replication running and aggregation.

The paper repeats every scenario ten times; :func:`run_replications` does
the same with deterministically derived seeds and :func:`aggregate` folds
the per-run :class:`~repro.metrics.collector.RunMetrics` into means with
95% confidence half-widths.  ``workers`` shards replications across a
process pool (:mod:`repro.experiments.parallel`); results are reassembled
in repetition order, so the aggregate is bit-identical for any worker
count.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.metrics.collector import RunMetrics
from repro.metrics.stats import confidence_interval_95, mean
from repro.network import SimulationConfig, run_simulation

if TYPE_CHECKING:
    from repro.experiments.parallel import ProgressCallback


class NonFiniteReplicationWarning(RuntimeWarning):
    """Raised when :func:`aggregate` drops non-finite replication values."""


def run_replications(
    config: SimulationConfig,
    repetitions: int,
    workers: Optional[int] = None,
    on_event: "Optional[ProgressCallback]" = None,
) -> List[RunMetrics]:
    """Run ``config`` ``repetitions`` times with derived seeds.

    ``workers=None`` (or 1) runs serially in-process; any other value
    shards the replications across a process pool.  The returned list is
    always in repetition order (index ``rep`` ran with seed
    ``replication_seed(config.seed, rep)``), whichever path executed it.
    """
    from repro.experiments.parallel import (
        replication_config,
        resolve_workers,
        run_grid,
    )

    if resolve_workers(workers) == 1 and on_event is None:
        return [run_simulation(replication_config(config, rep))
                for rep in range(repetitions)]
    return run_grid({None: config}, repetitions, workers=workers,
                    on_event=on_event)[None]


@dataclass(eq=False)
class AggregateMetrics:
    """Across-replication means (and 95% CIs) of the paper's quantities."""

    scheme: str
    repetitions: int
    total_energy: float
    total_energy_ci: float
    energy_variance: float
    energy_variance_ci: float
    pdr: float
    pdr_ci: float
    avg_delay: float
    avg_delay_ci: float
    energy_per_bit: float
    energy_per_bit_ci: float
    normalized_overhead: float
    normalized_overhead_ci: float
    #: per-node energy sorted ascending, averaged element-wise across runs
    #: (the paper's Fig. 5 curves)
    sorted_node_energy: Optional[NDArray[np.float64]] = None
    #: element-wise mean role numbers (unsorted, node-indexed)
    role_numbers: Optional[NDArray[np.float64]] = None
    #: mean per-node energy vector (node-indexed, for scatter plots)
    node_energy: Optional[NDArray[np.float64]] = None
    #: per-metric count of replications whose value was non-finite and was
    #: therefore excluded from that metric's mean/CI (empty = none dropped)
    dropped_replications: Dict[str, int] = field(default_factory=dict)

    def __eq__(self, other: object) -> bool:
        """Field-wise equality with ndarray-aware comparison.

        The generated dataclass ``__eq__`` raises on ndarray fields
        (ambiguous truth value); this version compares vectors with
        :func:`numpy.array_equal` so aggregates from different worker
        counts can be checked for bit-identity directly.
        """
        if not isinstance(other, AggregateMetrics):
            return NotImplemented
        for f in dataclasses.fields(self):
            a = getattr(self, f.name)
            b = getattr(other, f.name)
            if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
                if a is None or b is None:
                    return False
                if not np.array_equal(a, b):
                    return False
            elif a != b:
                return False
        return True

    def describe(self) -> str:
        """One-line summary."""
        line = (
            f"{self.scheme}: E={self.total_energy:.1f}J "
            f"var={self.energy_variance:.1f} PDR={self.pdr * 100:.1f}% "
            f"delay={self.avg_delay * 1e3:.0f}ms "
            f"EPB={self.energy_per_bit * 1e6:.1f}uJ/bit "
            f"ovh={self.normalized_overhead:.2f}"
        )
        if self.dropped_replications:
            drops = ",".join(f"{k}:{v}"
                             for k, v in sorted(self.dropped_replications.items()))
            line += f" [non-finite reps dropped: {drops}]"
        return line


def aggregate(runs: Sequence[RunMetrics]) -> AggregateMetrics:
    """Fold replications into means with confidence half-widths.

    Non-finite per-replication values (e.g. infinite energy-per-bit when a
    run delivered nothing) are excluded from that metric's mean/CI, but
    never silently: each exclusion is counted in
    ``AggregateMetrics.dropped_replications`` and a
    :class:`NonFiniteReplicationWarning` is emitted.
    """
    if not runs:
        raise ValueError("cannot aggregate zero runs")
    scheme = runs[0].scheme
    dropped: Dict[str, int] = {}

    def agg(name: str, values: List[float]) -> Tuple[float, float]:
        """Mean and 95% CI over the finite values, counting exclusions."""
        finite = [v for v in values if np.isfinite(v)]
        excluded = len(values) - len(finite)
        if excluded:
            dropped[name] = excluded
            warnings.warn(
                f"aggregate({scheme}): dropped {excluded}/{len(values)} "
                f"non-finite {name} replication values",
                NonFiniteReplicationWarning,
                stacklevel=3,
            )
        if not finite:
            return float("inf"), 0.0
        return mean(finite), confidence_interval_95(finite)

    te, te_ci = agg("total_energy", [r.total_energy for r in runs])
    ev, ev_ci = agg("energy_variance", [r.energy_variance for r in runs])
    pdr, pdr_ci = agg("pdr", [r.pdr for r in runs])
    dly, dly_ci = agg("avg_delay", [r.avg_delay for r in runs])
    epb, epb_ci = agg("energy_per_bit", [r.energy_per_bit for r in runs])
    ovh, ovh_ci = agg("normalized_overhead",
                      [r.normalized_overhead for r in runs])
    sorted_energy = np.mean(
        np.stack([r.sorted_node_energy() for r in runs]), axis=0
    )
    roles = np.mean(np.stack([r.role_numbers for r in runs]), axis=0)
    node_energy = np.mean(np.stack([r.node_energy for r in runs]), axis=0)
    return AggregateMetrics(
        scheme=scheme, repetitions=len(runs),
        total_energy=te, total_energy_ci=te_ci,
        energy_variance=ev, energy_variance_ci=ev_ci,
        pdr=pdr, pdr_ci=pdr_ci,
        avg_delay=dly, avg_delay_ci=dly_ci,
        energy_per_bit=epb, energy_per_bit_ci=epb_ci,
        normalized_overhead=ovh, normalized_overhead_ci=ovh_ci,
        sorted_node_energy=sorted_energy,
        role_numbers=roles,
        node_energy=node_energy,
        dropped_replications=dropped,
    )


def run_and_aggregate(
    config: SimulationConfig,
    repetitions: int,
    workers: Optional[int] = None,
    on_event: "Optional[ProgressCallback]" = None,
) -> AggregateMetrics:
    """Convenience composition of :func:`run_replications` + :func:`aggregate`."""
    return aggregate(run_replications(config, repetitions, workers=workers,
                                      on_event=on_event))


__all__ = [
    "AggregateMetrics",
    "NonFiniteReplicationWarning",
    "aggregate",
    "run_replications",
    "run_and_aggregate",
]
