"""Replication running and aggregation.

The paper repeats every scenario ten times; :func:`run_replications` does
the same with deterministically derived seeds and :func:`aggregate` folds
the per-run :class:`~repro.metrics.collector.RunMetrics` into means with
95% confidence half-widths.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

import numpy as np

from repro.metrics.collector import RunMetrics
from repro.metrics.stats import confidence_interval_95, mean
from repro.network import SimulationConfig, run_simulation
from repro.experiments.scenarios import replication_seed


def run_replications(config: SimulationConfig, repetitions: int) -> List[RunMetrics]:
    """Run ``config`` ``repetitions`` times with derived seeds."""
    results = []
    for rep in range(repetitions):
        cfg = replace(config, seed=replication_seed(config.seed, rep))
        results.append(run_simulation(cfg))
    return results


@dataclass
class AggregateMetrics:
    """Across-replication means (and 95% CIs) of the paper's quantities."""

    scheme: str
    repetitions: int
    total_energy: float
    total_energy_ci: float
    energy_variance: float
    energy_variance_ci: float
    pdr: float
    pdr_ci: float
    avg_delay: float
    avg_delay_ci: float
    energy_per_bit: float
    energy_per_bit_ci: float
    normalized_overhead: float
    normalized_overhead_ci: float
    #: per-node energy sorted ascending, averaged element-wise across runs
    #: (the paper's Fig. 5 curves)
    sorted_node_energy: np.ndarray = None
    #: element-wise mean role numbers (unsorted, node-indexed)
    role_numbers: np.ndarray = None
    #: mean per-node energy vector (node-indexed, for scatter plots)
    node_energy: np.ndarray = None

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.scheme}: E={self.total_energy:.1f}J "
            f"var={self.energy_variance:.1f} PDR={self.pdr * 100:.1f}% "
            f"delay={self.avg_delay * 1e3:.0f}ms "
            f"EPB={self.energy_per_bit * 1e6:.1f}uJ/bit "
            f"ovh={self.normalized_overhead:.2f}"
        )


def aggregate(runs: Sequence[RunMetrics]) -> AggregateMetrics:
    """Fold replications into means with confidence half-widths."""
    if not runs:
        raise ValueError("cannot aggregate zero runs")
    scheme = runs[0].scheme

    def agg(values: List[float]) -> tuple:
        """Mean and 95% CI over the finite values."""
        finite = [v for v in values if np.isfinite(v)]
        if not finite:
            return float("inf"), 0.0
        return mean(finite), confidence_interval_95(finite)

    te, te_ci = agg([r.total_energy for r in runs])
    ev, ev_ci = agg([r.energy_variance for r in runs])
    pdr, pdr_ci = agg([r.pdr for r in runs])
    dly, dly_ci = agg([r.avg_delay for r in runs])
    epb, epb_ci = agg([r.energy_per_bit for r in runs])
    ovh, ovh_ci = agg([r.normalized_overhead for r in runs])
    sorted_energy = np.mean(
        np.stack([r.sorted_node_energy() for r in runs]), axis=0
    )
    roles = np.mean(np.stack([r.role_numbers for r in runs]), axis=0)
    node_energy = np.mean(np.stack([r.node_energy for r in runs]), axis=0)
    return AggregateMetrics(
        scheme=scheme, repetitions=len(runs),
        total_energy=te, total_energy_ci=te_ci,
        energy_variance=ev, energy_variance_ci=ev_ci,
        pdr=pdr, pdr_ci=pdr_ci,
        avg_delay=dly, avg_delay_ci=dly_ci,
        energy_per_bit=epb, energy_per_bit_ci=epb_ci,
        normalized_overhead=ovh, normalized_overhead_ci=ovh_ci,
        sorted_node_energy=sorted_energy,
        role_numbers=roles,
        node_energy=node_energy,
    )


def run_and_aggregate(config: SimulationConfig, repetitions: int) -> AggregateMetrics:
    """Convenience composition of :func:`run_replications` + :func:`aggregate`."""
    return aggregate(run_replications(config, repetitions))


__all__ = ["AggregateMetrics", "aggregate", "run_replications", "run_and_aggregate"]
