"""Ablation studies for Rcast's design choices.

Three studies, all marked future work or design alternatives in the paper:

* **Decision factors** (paper Sections 3.2, 5) — the evaluated system uses
  only the neighbor-count probability; we additionally switch on the
  sender-recency, mobility and battery factors, alone and combined.
* **Opportunistic tap** — the paper's Rcast only *uses* overheard frames it
  elected to overhear; this study also taps frames a node happens to hear
  while awake for other reasons (free route information, zero extra energy).
* **Randomized RREQ reception** (paper Sections 3.3, 5) — broadcasts too
  can be received by a random subset (conservatively floored) to fight the
  broadcast-storm problem in dense networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.constants import POWER_AWAKE_W
from repro.experiments.parallel import run_grid
from repro.experiments.runner import AggregateMetrics, aggregate
from repro.experiments.scenarios import ExperimentScale, make_config
from repro.metrics.report import format_table
from repro.network import SimulationConfig

#: factor combinations evaluated by the factor ablation
FACTOR_SETS: Tuple[Tuple[str, ...], ...] = (
    (),
    ("sender",),
    ("mobility",),
    ("battery",),
    ("sender", "mobility", "battery"),
)


@dataclass
class AblationResult:
    """Named variants -> aggregated metrics."""

    study: str
    scale_name: str
    rate: float
    variants: Dict[str, AggregateMetrics]


def _run_variants(study: str, scale: ExperimentScale,
                  configs: "Dict[str, SimulationConfig]",
                  workers: Optional[int],
                  progress: Optional[Callable[[str], None]]) -> AblationResult:
    """Run a named-variant grid and fold it into an :class:`AblationResult`."""
    runs = run_grid(configs, scale.repetitions, workers=workers)
    variants: Dict[str, AggregateMetrics] = {}
    for name in configs:
        variants[name] = aggregate(runs[name])
        if progress is not None:
            progress(f"{name}: {variants[name].describe()}")
    return AblationResult(study, scale.name, scale.low_rate, variants)


def run_factors(scale: ExperimentScale, seed: int = 1,
                progress: Optional[Callable[[str], None]] = None,
        workers: Optional[int] = None) -> AblationResult:
    """Rcast decision-factor ablation (mobile scenario, low rate)."""
    # The battery factor needs a finite battery to have any effect; size it
    # so an always-awake node would drain ~2/3 of it during the run.
    battery = 1.5 * POWER_AWAKE_W * scale.sim_time
    configs = {
        ("+".join(factors) if factors else "neighbors-only"): make_config(
            scale, "rcast", scale.low_rate, mobile=True, seed=seed,
            rcast_factors=factors, battery_joules=battery,
        )
        for factors in FACTOR_SETS
    }
    return _run_variants("decision-factors", scale, configs, workers,
                         progress)


def run_tap(scale: ExperimentScale, seed: int = 1,
            progress: Optional[Callable[[str], None]] = None,
        workers: Optional[int] = None) -> AblationResult:
    """Opportunistic-tap ablation (mobile scenario, low rate)."""
    configs = {
        ("tap-on" if tap else "tap-off"): make_config(
            scale, "rcast", scale.low_rate, mobile=True, seed=seed,
            opportunistic_tap=tap,
        )
        for tap in (False, True)
    }
    return _run_variants("opportunistic-tap", scale, configs, workers,
                         progress)


def run_rreq(scale: ExperimentScale, seed: int = 1,
             progress: Optional[Callable[[str], None]] = None,
        workers: Optional[int] = None) -> AblationResult:
    """Randomized RREQ-reception ablation (static dense network)."""
    configs = {
        ("rreq-randomized" if randomized else "rreq-all"): make_config(
            scale, "rcast", scale.low_rate, mobile=False, seed=seed,
            rreq_randomized=randomized,
        )
        for randomized in (False, True)
    }
    return _run_variants("randomized-rreq", scale, configs, workers,
                         progress)


def format_result(result: AblationResult) -> str:
    """Comparison table across variants."""
    rows = []
    for name, agg in result.variants.items():
        rows.append([
            name, agg.total_energy, agg.energy_variance, agg.pdr * 100.0,
            agg.avg_delay * 1e3, agg.normalized_overhead,
        ])
    return format_table(
        ["variant", "energy [J]", "variance", "PDR [%]", "delay [ms]",
         "overhead"],
        rows,
        title=f"Ablation: {result.study} (rate={result.rate} pkt/s)",
    )


__all__ = [
    "FACTOR_SETS",
    "AblationResult",
    "run_factors",
    "run_tap",
    "run_rreq",
    "format_result",
]
