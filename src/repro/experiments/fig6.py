"""Figure 6: variance of per-node energy consumption vs packet rate.

Two panels (mobile / static).  Shape to reproduce: 802.11 has zero variance
(every node burns the same maximum energy); ODPM's variance is several times
Rcast's at every rate — the paper reports a 243%-400% energy-balance
improvement for Rcast over ODPM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.scenarios import ExperimentScale
from repro.experiments.sweep import sweep
from repro.metrics.report import format_series, ratio_improvement

SCHEMES = ("ieee80211", "odpm", "rcast")


@dataclass
class Fig6Result:
    """Energy variance series per scheme for both scenarios."""

    scale_name: str
    rates: Tuple[float, ...]
    #: (mobile?) -> scheme -> variance series over rates
    variance: Dict[bool, Dict[str, List[float]]]

    def improvement_over_odpm(self, mobile: bool) -> List[float]:
        """Rcast's variance improvement over ODPM, per rate, in percent."""
        odpm = self.variance[mobile]["odpm"]
        rcast = self.variance[mobile]["rcast"]
        return [ratio_improvement(o, r) for o, r in zip(odpm, rcast)]


def run(scale: ExperimentScale, seed: int = 1, progress: Optional[Callable[[str], None]] = None,
        workers: Optional[int] = None) -> Fig6Result:
    """Run the Figure 6 rate sweep."""
    grid = sweep(scale, SCHEMES, scenarios=(True, False), seed=seed,
                 progress=progress, workers=workers)
    variance: Dict[bool, Dict[str, List[float]]] = {}
    for mobile in (True, False):
        variance[mobile] = {
            scheme: grid.series(scheme, mobile, lambda a: a.energy_variance)
            for scheme in SCHEMES
        }
    return Fig6Result(scale.name, grid.rates, variance)


def format_result(result: Fig6Result) -> str:
    """Text rendering of both panels plus the improvement row."""
    blocks = []
    for mobile in (True, False):
        scenario = "mobile" if mobile else "static"
        series = dict(result.variance[mobile])
        series["rcast vs odpm [%]"] = result.improvement_over_odpm(mobile)
        blocks.append(format_series(
            "rate [pkt/s]", list(result.rates), series,
            title=f"Fig.6: variance of per-node energy [J^2], {scenario}",
        ))
    return "\n\n".join(blocks)


__all__ = ["Fig6Result", "run", "format_result", "SCHEMES"]
