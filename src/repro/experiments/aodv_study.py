"""Extension experiment: the paper's footnote 1 — DSR vs AODV under PSM.

The paper argues Rcast matters because DSR *depends* on overhearing, and
contrasts AODV, which forbids overhearing and expires routes by timeout:
"this necessitates more RREQ messages.  According to Das et al., 90% of
the routing overhead comes from RREQ."

This experiment runs both protocols in the same mobile scenario and
measures:

* the RREQ share of control-packet transmissions (paper: ~90% for AODV;
  DSR's is lower because caches and cache replies quench floods), and
* how much energy Rcast saves *per protocol* relative to unconditional
  PSM — for DSR the saving is the paper's headline; for AODV, with no
  overhearing to randomize, Rcast degenerates to near-no-overhearing and
  the PSM baseline itself is already cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.experiments.runner import AggregateMetrics
from repro.experiments.scenarios import ExperimentScale, make_config
from repro.metrics.report import format_table

PROTOCOLS = ("dsr", "aodv")
SCHEMES = ("psm", "rcast")


def rreq_share(metrics: AggregateMetrics, raw_transmissions: Dict[str, int]) -> float:
    """Fraction of control transmissions that were RREQs."""
    control = sum(raw_transmissions.get(k, 0) for k in ("rreq", "rrep", "rerr"))
    if control == 0:
        return 0.0
    return raw_transmissions.get("rreq", 0) / control


@dataclass
class AodvStudyResult:
    """Aggregates plus per-cell transmission composition."""

    scale_name: str
    rate: float
    cells: Dict[Tuple[str, str], AggregateMetrics]       # (protocol, scheme)
    transmissions: Dict[Tuple[str, str], Dict[str, int]]

    def rreq_share_of(self, protocol: str, scheme: str) -> float:
        """RREQ fraction of control transmissions for one cell."""
        return rreq_share(self.cells[(protocol, scheme)],
                          self.transmissions[(protocol, scheme)])


def run(scale: ExperimentScale, seed: int = 1, progress: Optional[Callable[[str], None]] = None,
        workers: Optional[int] = None) -> AodvStudyResult:
    """Run the protocol x scheme grid (mobile scenario, low rate)."""
    from repro.experiments.parallel import run_grid
    from repro.experiments.runner import aggregate as aggregate_runs

    configs = {
        (protocol, scheme): make_config(scale, scheme, scale.low_rate,
                                        mobile=True, seed=seed,
                                        routing=protocol)
        for protocol in PROTOCOLS for scheme in SCHEMES
    }
    grid = run_grid(configs, scale.repetitions, workers=workers)
    cells: Dict[Tuple[str, str], AggregateMetrics] = {}
    tx: Dict[Tuple[str, str], Dict[str, int]] = {}
    for key, runs in grid.items():
        cells[key] = aggregate_runs(runs)
        totals: Dict[str, int] = {}
        for metrics in runs:
            for kind, count in metrics.transmissions.items():
                totals[kind] = totals.get(kind, 0) + count
        tx[key] = totals
        if progress is not None:
            progress(f"{key[0]}/{key[1]}: {cells[key].describe()}")
    return AodvStudyResult(scale.name, scale.low_rate, cells, tx)


def format_result(result: AodvStudyResult) -> str:
    """Comparison table plus the footnote's headline numbers."""
    rows = []
    for (protocol, scheme), agg in sorted(result.cells.items()):
        rows.append([
            protocol, scheme, agg.total_energy, agg.pdr * 100.0,
            agg.normalized_overhead,
            f"{result.rreq_share_of(protocol, scheme) * 100:.0f}%",
        ])
    table = format_table(
        ["protocol", "scheme", "energy [J]", "PDR [%]", "overhead",
         "RREQ share"],
        rows,
        title=(f"Footnote 1: DSR vs AODV under PSM "
               f"(mobile, rate={result.rate} pkt/s)"),
    )
    aodv_share = result.rreq_share_of("aodv", "rcast")
    dsr_share = result.rreq_share_of("dsr", "rcast")
    note = (
        f"RREQ share of control traffic: AODV {aodv_share * 100:.0f}% "
        f"vs DSR {dsr_share * 100:.0f}% "
        "(paper, citing Das et al.: ~90% for AODV)"
    )
    return table + "\n" + note


__all__ = ["AodvStudyResult", "run", "format_result", "PROTOCOLS", "SCHEMES",
           "rreq_share"]
