"""Figure 7: total energy, packet delivery ratio and energy-per-bit vs rate.

Two scenario rows (mobile / static), three metric columns.  Shape to
reproduce:

* total energy: ``ieee80211 > odpm > rcast`` at every rate (the paper
  reports Rcast 28-75% below ODPM when mobile and 37-131% when static);
* PDR: all schemes above ~90%, Rcast within a few points of the best;
* energy-per-bit: lowest for Rcast (up to 75% less than 802.11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.scenarios import ExperimentScale
from repro.experiments.sweep import sweep
from repro.metrics.report import format_series, ratio_improvement

SCHEMES = ("ieee80211", "odpm", "rcast")

METRICS = {
    "total_energy": lambda a: a.total_energy,
    "pdr": lambda a: a.pdr * 100.0,
    "energy_per_bit": lambda a: a.energy_per_bit,
}


@dataclass
class Fig7Result:
    """Per-scenario, per-metric, per-scheme series over the rate axis."""

    scale_name: str
    rates: Tuple[float, ...]
    #: (mobile?) -> metric -> scheme -> series
    data: Dict[bool, Dict[str, Dict[str, List[float]]]]

    def energy_gap_vs_odpm(self, mobile: bool) -> List[float]:
        """Percent by which ODPM exceeds Rcast in total energy, per rate."""
        odpm = self.data[mobile]["total_energy"]["odpm"]
        rcast = self.data[mobile]["total_energy"]["rcast"]
        return [ratio_improvement(o, r) for o, r in zip(odpm, rcast)]

    def energy_gap_vs_80211(self, mobile: bool) -> List[float]:
        """Percent by which 802.11 exceeds Rcast in total energy, per rate."""
        base = self.data[mobile]["total_energy"]["ieee80211"]
        rcast = self.data[mobile]["total_energy"]["rcast"]
        return [ratio_improvement(b, r) for b, r in zip(base, rcast)]


def run(scale: ExperimentScale, seed: int = 1, progress: Optional[Callable[[str], None]] = None,
        workers: Optional[int] = None,
        overhearing_policy: str = "fixed") -> Fig7Result:
    """Run the Figure 7 rate sweep.

    ``overhearing_policy`` selects the receiver-side P_R policy
    (:mod:`repro.core.adaptive`); only the rcast column reacts — the
    other schemes never advertise RANDOMIZED levels.
    """
    grid = sweep(scale, SCHEMES, scenarios=(True, False), seed=seed,
                 progress=progress, workers=workers,
                 overhearing_policy=overhearing_policy)
    data: Dict[bool, Dict[str, Dict[str, List[float]]]] = {}
    for mobile in (True, False):
        data[mobile] = {
            name: {
                scheme: grid.series(scheme, mobile, fn) for scheme in SCHEMES
            }
            for name, fn in METRICS.items()
        }
    return Fig7Result(scale.name, grid.rates, data)


def format_result(result: Fig7Result) -> str:
    """Text rendering of all six panels plus headline gaps."""
    titles = {
        "total_energy": "total energy [J]",
        "pdr": "packet delivery ratio [%]",
        "energy_per_bit": "energy per delivered bit [J/bit]",
    }
    blocks = []
    for mobile in (True, False):
        scenario = "mobile" if mobile else "static"
        for name, title in titles.items():
            blocks.append(format_series(
                "rate [pkt/s]", list(result.rates),
                result.data[mobile][name],
                title=f"Fig.7: {title}, {scenario}",
            ))
        gaps = result.energy_gap_vs_odpm(mobile)
        base_gaps = result.energy_gap_vs_80211(mobile)
        blocks.append(
            f"Rcast energy advantage ({scenario}): "
            f"vs ODPM {min(gaps):.0f}%..{max(gaps):.0f}% "
            f"(paper: 28..75% mobile / 37..131% static); "
            f"vs 802.11 {min(base_gaps):.0f}%..{max(base_gaps):.0f}%"
        )
    return "\n\n".join(blocks)


__all__ = ["Fig7Result", "run", "format_result", "SCHEMES"]
