"""Figure 9: role number vs per-node energy (scatter), mobile scenario.

The role number measures packet-forwarding responsibility (see
:mod:`repro.metrics.role`).  Shape to reproduce:

* 802.11: energy identical for all nodes (points on a horizontal line);
* ODPM: wide role spread — the paper reads a maximum role number of ~50 at
  high rate, with energy strongly split between involved/uninvolved nodes;
* Rcast: tighter role distribution (max ~30 in the paper) and much tighter
  energy spread, i.e. better balance in both dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.experiments.runner import AggregateMetrics
from repro.experiments.scenarios import ExperimentScale
from repro.experiments.sweep import sweep
from repro.metrics.report import format_table
from repro.metrics.stats import sample_variance

SCHEMES = ("ieee80211", "odpm", "rcast")


@dataclass
class Fig9Panel:
    """One scheme x rate scatter with its summary statistics."""

    scheme: str
    rate: float
    roles: NDArray[np.float64]   # per-node role numbers
    energy: NDArray[np.float64]  # per-node energy [J]
    max_role: float
    mean_role: float
    role_variance: float
    energy_variance: float
    correlation: float         # Pearson(role, energy); nan if degenerate

    def scatter_points(self) -> List[Tuple[float, float]]:
        """(role, energy) pairs, the raw scatter."""
        return list(zip(self.roles.tolist(), self.energy.tolist()))


@dataclass
class Fig9Result:
    """All six panels of Figure 9."""

    scale_name: str
    rates: Tuple[float, float]
    panels: Dict[Tuple[str, float], Fig9Panel]


def _make_panel(scheme: str, rate: float, agg: AggregateMetrics) -> Fig9Panel:
    roles = agg.role_numbers
    energy = agg.node_energy
    assert roles is not None and energy is not None, \
        "aggregate() always fills the per-node vectors"
    if roles.std() > 0 and energy.std() > 0:
        correlation = float(np.corrcoef(roles, energy)[0, 1])
    else:
        correlation = float("nan")
    return Fig9Panel(
        scheme=scheme, rate=rate, roles=roles, energy=energy,
        max_role=float(roles.max()), mean_role=float(roles.mean()),
        role_variance=sample_variance(roles.tolist()),
        energy_variance=sample_variance(energy.tolist()),
        correlation=correlation,
    )


def run(scale: ExperimentScale, seed: int = 1, progress: Optional[Callable[[str], None]] = None,
        workers: Optional[int] = None) -> Fig9Result:
    """Run the six panels (3 schemes x 2 rates) of Figure 9 (mobile)."""
    rates = (scale.low_rate, scale.high_rate)
    grid = sweep(scale, SCHEMES, rates=rates, scenarios=(True,), seed=seed,
                 progress=progress, workers=workers)
    panels = {
        (scheme, rate): _make_panel(scheme, rate, grid.get(scheme, rate, True))
        for scheme in SCHEMES for rate in rates
    }
    return Fig9Result(scale.name, rates, panels)


def format_result(result: Fig9Result) -> str:
    """Summary table per panel (the quantities the paper reads off)."""
    rows = []
    for (scheme, rate), p in sorted(result.panels.items(),
                                    key=lambda kv: (kv[0][1], kv[0][0])):
        rows.append([
            scheme, rate, p.max_role, p.mean_role, p.role_variance,
            p.energy_variance,
            "n/a" if np.isnan(p.correlation) else f"{p.correlation:.2f}",
        ])
    table = format_table(
        ["scheme", "rate", "max role", "mean role", "role var",
         "energy var", "corr(role,E)"],
        rows,
        title="Fig.9: role number vs energy, mobile scenario",
    )
    odpm_hi = result.panels[("odpm", result.rates[1])]
    rcast_hi = result.panels[("rcast", result.rates[1])]
    note = (
        f"high-rate max role: odpm={odpm_hi.max_role:.0f} "
        f"rcast={rcast_hi.max_role:.0f} "
        "(paper: ~50 vs ~30 -> rcast balances forwarding load)"
    )
    return table + "\n" + note


__all__ = ["Fig9Panel", "Fig9Result", "run", "format_result", "SCHEMES"]
