"""Figure 5: per-node energy consumption, sorted ascending.

Four panels — (packet rate, scenario) in {low, high} x {mobile, static} —
each showing the per-node energy of all nodes drawn in increasing order for
802.11, ODPM and Rcast.

Shape to reproduce:

* ``ieee80211`` is a flat line at ``P_awake x T`` (maximum possible);
* ``odpm`` shows a step profile: uninvolved nodes near the ATIM-only floor,
  involved nodes near the maximum — the step is sharpest in the static
  high-rate panel;
* ``rcast`` sits low and rises smoothly — the energy-balance claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.experiments.runner import AggregateMetrics
from repro.experiments.scenarios import ExperimentScale
from repro.experiments.sweep import sweep
from repro.metrics.report import format_table

SCHEMES = ("ieee80211", "odpm", "rcast")

#: Panel key: (rate, mobile).
PanelKey = Tuple[float, bool]


@dataclass
class Fig5Result:
    """Sorted per-node energy curves for the four panels."""

    scale_name: str
    rates: Tuple[float, float]           # (low, high)
    panels: Dict[PanelKey, Dict[str, NDArray[np.float64]]]

    def panel(self, rate: float,
              mobile: bool) -> Dict[str, NDArray[np.float64]]:
        """Scheme -> sorted-energy curve for one panel."""
        return self.panels[(rate, mobile)]


def run(scale: ExperimentScale, seed: int = 1, progress: Optional[Callable[[str], None]] = None,
        workers: Optional[int] = None) -> Fig5Result:
    """Run the four panels of Figure 5."""
    rates = (scale.low_rate, scale.high_rate)
    grid = sweep(scale, SCHEMES, rates=rates, scenarios=(True, False),
                 seed=seed, progress=progress, workers=workers)
    panels: Dict[PanelKey, Dict[str, NDArray[np.float64]]] = {}
    for mobile in (True, False):
        for rate in rates:
            panels[(rate, mobile)] = {
                scheme: _curve(grid.get(scheme, rate, mobile))
                for scheme in SCHEMES
            }
    return Fig5Result(scale.name, rates, panels)


def _curve(agg: AggregateMetrics) -> NDArray[np.float64]:
    curve = agg.sorted_node_energy
    assert curve is not None, "aggregate() always fills sorted_node_energy"
    return curve


def format_result(result: Fig5Result, step: int = 10) -> str:
    """Text rendering: sorted energy sampled every ``step`` nodes."""
    blocks: List[str] = []
    for (rate, mobile), curves in sorted(result.panels.items(),
                                         key=lambda kv: (not kv[0][1], kv[0][0])):
        scenario = "mobile" if mobile else "static"
        n = len(next(iter(curves.values())))
        indices = list(range(0, n, step)) + [n - 1]
        rows = []
        for i in indices:
            rows.append([i] + [float(curves[s][i]) for s in SCHEMES])
        blocks.append(format_table(
            ["node(sorted)"] + [f"{s} [J]" for s in SCHEMES],
            rows,
            title=f"Fig.5 panel: rate={rate} pkt/s, {scenario}",
        ))
    return "\n\n".join(blocks)


__all__ = ["Fig5Result", "run", "format_result", "SCHEMES"]
