"""Reproduction harness for the paper's evaluation (Section 4).

Each experiment module regenerates one table or figure:

========== ==========================================================
module     paper content
========== ==========================================================
`table1`   scheme-behaviour comparison (Table 1), backed by measurement
`fig5`     per-node energy consumption, sorted (Figure 5, 4 panels)
`fig6`     variance of per-node energy vs packet rate (Figure 6)
`fig7`     total energy, PDR, energy-per-bit vs rate (Figure 7)
`fig8`     average delay and normalized routing overhead (Figure 8)
`fig9`     role number vs energy scatter (Figure 9)
`ablation` extension studies: decision factors, opportunistic tap,
           randomized RREQ reception
`adaptive_study` adaptive P_R policies vs fixed 1/n at 100/1,000 nodes
           (extension)
`lifetime` network lifetime under finite batteries (extension)
`sensitivity` PSM beacon/ATIM timing sensitivity (extension)
`aodv_study`  footnote 1: DSR vs AODV under PSM (extension)
`resilience`  scheme degradation under injected faults (extension)
`export`   JSON/CSV serialization of sweep results
========== ==========================================================

Every module exposes ``run(scale)`` returning a result object and a
``format_result`` helper producing the text tables the benchmarks print.
``scale`` is an :class:`~repro.experiments.scenarios.ExperimentScale`:
``PAPER_SCALE`` matches the paper exactly (100 nodes, 1125 s, 10
repetitions — hours of CPU), ``BENCH_SCALE`` preserves the shape at
laptop-friendly cost, and ``SMOKE_SCALE`` exists for tests.
"""

from repro.experiments.parallel import (
    ParallelRunner,
    ProgressEvent,
    RunnerStats,
    parallel_map,
    resolve_workers,
    run_grid,
)
from repro.experiments.runner import (
    AggregateMetrics,
    aggregate,
    run_and_aggregate,
    run_replications,
)
from repro.experiments.scenarios import (
    BENCH_SCALE,
    PAPER_SCALE,
    SMOKE_SCALE,
    ExperimentScale,
    make_config,
)
from repro.experiments.sweep import sweep

__all__ = [
    "AggregateMetrics",
    "BENCH_SCALE",
    "ExperimentScale",
    "PAPER_SCALE",
    "ParallelRunner",
    "ProgressEvent",
    "RunnerStats",
    "SMOKE_SCALE",
    "aggregate",
    "make_config",
    "parallel_map",
    "resolve_workers",
    "run_and_aggregate",
    "run_grid",
    "run_replications",
    "sweep",
]
