"""Extension experiment: network lifetime under finite batteries.

The paper claims Rcast "improves the energy balance among the nodes and
increases the network lifetime" but reports only the variance; this
experiment quantifies the lifetime claim directly.  Every node gets a
battery an always-awake radio would exhaust in 60% of the run; per-scheme
per-node energy profiles are projected into depletion times
(:mod:`repro.metrics.lifetime`), yielding time-to-first-death, half-life
and the alive fraction at the run horizon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.constants import POWER_AWAKE_W
from repro.experiments.parallel import run_grid
from repro.experiments.scenarios import ExperimentScale, make_config
from repro.metrics.lifetime import lifetime_from_metrics
from repro.metrics.report import format_table
from repro.metrics.stats import mean

SCHEMES = ("ieee80211", "odpm", "rcast")


@dataclass
class LifetimeSummary:
    """Across-replication lifetime means for one scheme."""

    scheme: str
    first_death: float
    half_life: float
    alive_at_end: float  # fraction in [0, 1]


@dataclass
class LifetimeResult:
    """Lifetime summaries for all schemes at one operating point."""

    scale_name: str
    rate: float
    battery_joules: float
    summaries: Dict[str, LifetimeSummary]


def run(scale: ExperimentScale, seed: int = 1, progress: Optional[Callable[[str], None]] = None,
        workers: Optional[int] = None,
        overhearing_policy: str = "fixed") -> LifetimeResult:
    """Run the lifetime comparison (static scenario, low rate).

    With a non-fixed ``overhearing_policy`` the rcast column runs under
    that adaptive P_R policy — the energy-budget controller in
    particular reads the same finite battery this experiment installs.
    """
    battery = 0.6 * POWER_AWAKE_W * scale.sim_time
    configs = {
        scheme: make_config(scale, scheme, scale.low_rate, mobile=False,
                            seed=seed, battery_joules=battery,
                            overhearing_policy=overhearing_policy)
        for scheme in SCHEMES
    }
    grid = run_grid(configs, scale.repetitions, workers=workers)
    summaries: Dict[str, LifetimeSummary] = {}
    for scheme in SCHEMES:
        reports = [lifetime_from_metrics(m, battery) for m in grid[scheme]]
        summaries[scheme] = LifetimeSummary(
            scheme=scheme,
            first_death=mean([r.first_death for r in reports]),
            half_life=mean([r.half_life for r in reports]),
            alive_at_end=mean([r.alive_fraction(scale.sim_time)
                               for r in reports]),
        )
        if progress is not None:
            progress(f"{scheme}: first death {summaries[scheme].first_death:.1f}s")
    return LifetimeResult(scale.name, scale.low_rate, battery, summaries)


def format_result(result: LifetimeResult) -> str:
    """Comparison table."""
    rows = []
    for scheme in SCHEMES:
        s = result.summaries[scheme]
        rows.append([scheme, s.first_death, s.half_life,
                     s.alive_at_end * 100.0])
    return format_table(
        ["scheme", "first death [s]", "half-life [s]", "alive at end [%]"],
        rows,
        title=(f"Network lifetime, {result.battery_joules:.0f} J batteries, "
               f"rate={result.rate} pkt/s, static"),
    )


__all__ = ["LifetimeResult", "LifetimeSummary", "run", "format_result",
           "SCHEMES"]
