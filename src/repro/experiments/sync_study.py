"""Extension experiment: how much does the paper's sync assumption carry?

The paper assumes a perfect distributed clock-sync algorithm (citing Tseng
et al. and Huang & Lai) and sets synchronization aside.  This experiment
injects residual clock error — each node's beacon clock shifted by a
uniform offset in ``[0, jitter)`` — and measures what happens to Rcast.

ATIM exchange follows window-overlap semantics (senders retry ATIMs
throughout their window): sync error within one ATIM window is harmless,
because any two windows still overlap.  Beyond one window, node pairs whose
phase difference exceeds the window lose their ATIM exchange entirely —
and what rescues the network is routing, not the MAC: DSR detects the
failing links and routes around badly-synchronized pairs, trading overhead
and delay for delivery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.experiments.parallel import run_grid
from repro.experiments.runner import AggregateMetrics, aggregate
from repro.experiments.scenarios import ExperimentScale, make_config
from repro.metrics.report import format_table

#: clock-jitter bounds swept, seconds.  0 = the paper's perfect sync; up
#: to one ATIM window (0.05 s) windows always overlap and nothing is lost;
#: beyond it node pairs with larger phase differences lose their ATIM
#: exchange entirely and DSR must route around them.
JITTERS = (0.0, 0.05, 0.1, 0.2)


@dataclass
class SyncStudyResult:
    """Aggregates per jitter bound (Rcast, static scenario)."""

    scale_name: str
    rate: float
    cells: Dict[float, AggregateMetrics]


def run(scale: ExperimentScale, seed: int = 1, progress: Optional[Callable[[str], None]] = None,
        workers: Optional[int] = None) -> SyncStudyResult:
    """Sweep residual clock error for Rcast (static, low rate)."""
    configs = {
        jitter: make_config(scale, "rcast", scale.low_rate, mobile=False,
                            seed=seed, clock_jitter=jitter)
        for jitter in JITTERS
    }
    runs = run_grid(configs, scale.repetitions, workers=workers)
    cells: Dict[float, AggregateMetrics] = {}
    for jitter in JITTERS:
        cells[jitter] = aggregate(runs[jitter])
        if progress is not None:
            progress(f"jitter={jitter * 1e3:.0f}ms: {cells[jitter].describe()}")
    return SyncStudyResult(scale.name, scale.low_rate, cells)


def format_result(result: SyncStudyResult) -> str:
    """PDR / energy / overhead across the jitter sweep."""
    rows = []
    for jitter in sorted(result.cells):
        agg = result.cells[jitter]
        rows.append([
            f"{jitter * 1e3:.0f} ms", agg.pdr * 100.0, agg.total_energy,
            agg.avg_delay * 1e3, agg.normalized_overhead,
        ])
    table = format_table(
        ["clock jitter", "PDR [%]", "energy [J]", "delay [ms]", "overhead"],
        rows,
        title=(f"Residual clock-sync error under Rcast (static, "
               f"rate={result.rate} pkt/s)"),
    )
    return table + (
        "\nReading: the paper's perfect-sync assumption is load-bearing for"
        "\ndelay/overhead, but DSR's rerouting keeps delivery functional by"
        "\nsteering around consistently-missynchronized links."
    )


__all__ = ["SyncStudyResult", "run", "format_result", "JITTERS"]
