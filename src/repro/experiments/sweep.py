"""Parameter sweeps: (scheme x rate x scenario) grids.

The paper's Figures 6-8 are rate sweeps at two pause times; :func:`sweep`
runs the full grid and returns a :class:`SweepResult` the figure modules
slice series out of.

With ``workers > 1`` the sweep shards every (cell x repetition) work item
across a process pool (:mod:`repro.experiments.parallel`) — not just the
replications of one cell — so a full-grid sweep approaches linear
multicore speedup.  Results are reassembled keyed by ``(cell, rep)``,
never by completion order: the same seed produces bit-identical
:class:`~repro.experiments.runner.AggregateMetrics` for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.parallel import (
    ProgressCallback,
    ProgressEvent,
    run_grid,
)
from repro.experiments.runner import AggregateMetrics, aggregate
from repro.experiments.scenarios import ExperimentScale, make_config
from repro.obs.manifest import RunManifest

#: Result key: (scheme, rate, mobile?).
SweepKey = Tuple[str, float, bool]


@dataclass
class SweepResult:
    """Aggregated metrics over a (scheme x rate x scenario) grid."""

    scale_name: str
    schemes: Tuple[str, ...]
    rates: Tuple[float, ...]
    scenarios: Tuple[bool, ...]  # True = mobile, False = static
    cells: Dict[SweepKey, AggregateMetrics] = field(default_factory=dict)
    #: per-replication provenance records, sorted by (cell, rep).  Wall
    #: times are measurements, not simulation output: they vary run to run.
    manifests: List[RunManifest] = field(default_factory=list)

    def get(self, scheme: str, rate: float, mobile: bool) -> AggregateMetrics:
        """Aggregate for one grid cell."""
        return self.cells[(scheme, rate, mobile)]

    def series(self, scheme: str, mobile: bool,
               metric: Callable[[AggregateMetrics], float]) -> List[float]:
        """Extract ``metric`` across the rate axis for one scheme/scenario."""
        return [metric(self.cells[(scheme, r, mobile)]) for r in self.rates]


def sweep(
    scale: ExperimentScale,
    schemes: Sequence[str],
    rates: Optional[Sequence[float]] = None,
    scenarios: Sequence[bool] = (True, False),
    seed: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
    on_event: Optional[ProgressCallback] = None,
    **config_overrides: Any,
) -> SweepResult:
    """Run the full grid; each cell is aggregated over the scale's reps.

    ``workers=None`` (or 1) executes serially in-process; ``workers=N``
    shards all (cell x repetition) items across ``N`` worker processes
    (``workers=0`` = all cores).  ``progress`` receives one human-readable
    line per finished cell in deterministic grid order; ``on_event``
    receives the structured
    :class:`~repro.experiments.parallel.ProgressEvent` stream.  Every
    replication's :class:`~repro.obs.manifest.RunManifest` is collected on
    ``result.manifests`` (sorted by cell/rep, independent of completion
    order).
    """
    rates = tuple(rates if rates is not None else scale.rates)
    result = SweepResult(
        scale_name=scale.name,
        schemes=tuple(schemes),
        rates=rates,
        scenarios=tuple(scenarios),
    )
    configs = {
        (scheme, rate, mobile): make_config(scale, scheme, rate, mobile,
                                            seed=seed, **config_overrides)
        for mobile in scenarios
        for rate in rates
        for scheme in schemes
    }
    manifests: List[RunManifest] = []

    def _collect(event: ProgressEvent) -> None:
        if event.kind == "rep-finish" and event.manifest is not None:
            manifests.append(event.manifest)
        if on_event is not None:
            on_event(event)

    runs = run_grid(configs, scale.repetitions, workers=workers,
                    on_event=_collect)
    result.manifests = sorted(
        manifests, key=lambda m: (m.cell or "", m.rep or 0)
    )
    for key in configs:
        agg = aggregate(runs[key])
        result.cells[key] = agg
        if progress is not None:
            scheme, rate, mobile = key
            label = "mobile" if mobile else "static"
            progress(f"[{label} rate={rate}] {agg.describe()}")
    return result


__all__ = ["SweepKey", "SweepResult", "sweep"]
