"""Table 1: protocol behaviour of the three schemes, backed by measurement.

The paper's Table 1 is qualitative ("802.11: best PDR and delay but most
energy; ODPM: less delay than Rcast, more energy; Rcast: least energy and
best balance").  This experiment runs all schemes (the paper's three plus
the two PSM baselines) at a mid-load point and checks each expectation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.parallel import run_grid
from repro.experiments.runner import AggregateMetrics, aggregate
from repro.experiments.scenarios import ExperimentScale, make_config
from repro.metrics.report import format_table

SCHEMES = ("ieee80211", "psm", "psm-nooh", "odpm", "rcast")

BEHAVIOUR = {
    "ieee80211": "no PSM; always awake; immediate transmission",
    "psm": "PSM; unconditional overhearing of every advertisement",
    "psm-nooh": "PSM; no overhearing at all (naive baseline)",
    "odpm": "PSM + AM/PS switching on RREP(5s)/data(2s) timers",
    "rcast": "PSM; randomized overhearing, P_R = 1/neighbors",
}

EXPECTED = {
    "ieee80211": "best PDR/delay, most energy, zero variance",
    "psm": "high energy (everyone overhears), PSM delay",
    "psm-nooh": "least energy, weakest route knowledge",
    "odpm": "lower delay than Rcast, more energy and variance",
    "rcast": "low energy, best energy balance, PSM delay",
}


@dataclass
class Table1Result:
    """Measured behaviour of every scheme at one operating point."""

    scale_name: str
    rate: float
    mobile: bool
    rows: Dict[str, AggregateMetrics]
    checks: List[Tuple[str, bool]]


def run(scale: ExperimentScale, seed: int = 1, progress: Optional[Callable[[str], None]] = None,
        workers: Optional[int] = None) -> Table1Result:
    """Run all schemes at the scale's low rate, mobile scenario."""
    rate = scale.low_rate
    configs = {
        scheme: make_config(scale, scheme, rate, mobile=True, seed=seed)
        for scheme in SCHEMES
    }
    runs = run_grid(configs, scale.repetitions, workers=workers)
    rows: Dict[str, AggregateMetrics] = {}
    for scheme in SCHEMES:
        rows[scheme] = aggregate(runs[scheme])
        if progress is not None:
            progress(rows[scheme].describe())
    checks = _verify(rows)
    return Table1Result(scale.name, rate, True, rows, checks)


def _verify(rows: Dict[str, AggregateMetrics]) -> List[Tuple[str, bool]]:
    r = rows
    return [
        ("802.11 consumes the most energy",
         all(r["ieee80211"].total_energy >= r[s].total_energy
             for s in SCHEMES)),
        ("802.11 has the best delay",
         all(r["ieee80211"].avg_delay <= r[s].avg_delay for s in SCHEMES)),
        ("802.11 energy variance is (near) zero",
         r["ieee80211"].energy_variance <= 1.0),
        ("Rcast consumes less energy than ODPM",
         r["rcast"].total_energy < r["odpm"].total_energy),
        ("Rcast consumes less energy than unconditional PSM",
         r["rcast"].total_energy < r["psm"].total_energy),
        ("ODPM delay is below Rcast delay (immediate AM transmissions)",
         r["odpm"].avg_delay < r["rcast"].avg_delay),
        ("Rcast balances energy better than ODPM (lower variance)",
         r["rcast"].energy_variance < r["odpm"].energy_variance),
        ("every scheme delivers most packets (PDR > 85%)",
         all(r[s].pdr > 0.85 for s in SCHEMES)),
    ]


def format_result(result: Table1Result) -> str:
    """Behaviour table plus measured metrics plus check outcomes."""
    rows = []
    for scheme in SCHEMES:
        agg = result.rows[scheme]
        rows.append([
            scheme, agg.total_energy, agg.energy_variance,
            agg.pdr * 100.0, agg.avg_delay * 1e3, agg.normalized_overhead,
        ])
    table = format_table(
        ["scheme", "energy [J]", "variance", "PDR [%]", "delay [ms]",
         "overhead"],
        rows,
        title=(f"Table 1 (measured @ rate={result.rate} pkt/s, "
               f"{'mobile' if result.mobile else 'static'})"),
    )
    lines = [table, "", "behaviour / expectation:"]
    for scheme in SCHEMES:
        lines.append(f"  {scheme:10} {BEHAVIOUR[scheme]}")
        lines.append(f"  {'':10} expected: {EXPECTED[scheme]}")
    lines.append("")
    for label, ok in result.checks:
        lines.append(f"  [{'PASS' if ok else 'FAIL'}] {label}")
    return "\n".join(lines)


__all__ = ["Table1Result", "run", "format_result", "SCHEMES", "BEHAVIOUR"]
