"""Figure 8: average end-to-end delay and normalized routing overhead.

Shape to reproduce:

* delay: smallest for 802.11 (immediate transmission); ODPM in between
  (immediate when the next hop is believed awake); Rcast pays the PSM price
  of roughly half a beacon interval (125 ms) per hop;
* normalized routing overhead (control transmissions per delivered data
  packet): far higher in the mobile scenario than static; the schemes sit
  in the same band, with Rcast no worse than unconditional overhearing —
  i.e. limited overhearing does not degrade routing efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.scenarios import ExperimentScale
from repro.experiments.sweep import sweep
from repro.metrics.report import format_series

SCHEMES = ("ieee80211", "odpm", "rcast")

METRICS = {
    "avg_delay": lambda a: a.avg_delay,
    "overhead": lambda a: a.normalized_overhead,
}


@dataclass
class Fig8Result:
    """Delay and overhead series per scheme for both scenarios."""

    scale_name: str
    rates: Tuple[float, ...]
    #: (mobile?) -> metric -> scheme -> series
    data: Dict[bool, Dict[str, Dict[str, List[float]]]]


def run(scale: ExperimentScale, seed: int = 1, progress: Optional[Callable[[str], None]] = None,
        workers: Optional[int] = None) -> Fig8Result:
    """Run the Figure 8 rate sweep."""
    grid = sweep(scale, SCHEMES, scenarios=(True, False), seed=seed,
                 progress=progress, workers=workers)
    data: Dict[bool, Dict[str, Dict[str, List[float]]]] = {}
    for mobile in (True, False):
        data[mobile] = {
            name: {scheme: grid.series(scheme, mobile, fn)
                   for scheme in SCHEMES}
            for name, fn in METRICS.items()
        }
    return Fig8Result(scale.name, grid.rates, data)


def format_result(result: Fig8Result) -> str:
    """Text rendering of the four panels."""
    titles = {
        "avg_delay": "average end-to-end delay [s]",
        "overhead": "normalized routing overhead [ctrl tx / delivered pkt]",
    }
    blocks = []
    for mobile in (True, False):
        scenario = "mobile" if mobile else "static"
        for name, title in titles.items():
            blocks.append(format_series(
                "rate [pkt/s]", list(result.rates),
                result.data[mobile][name],
                title=f"Fig.8: {title}, {scenario}",
            ))
    return "\n\n".join(blocks)


__all__ = ["Fig8Result", "run", "format_result", "SCHEMES"]
