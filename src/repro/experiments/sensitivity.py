"""Extension experiment: sensitivity to the PSM timing parameters.

The paper fixes beacon interval = 250 ms and ATIM window = 50 ms (citing
Woesner et al. for the choice).  This experiment sweeps the beacon interval
(holding the ATIM fraction at 20%) and, separately, the ATIM fraction
(holding the beacon interval), quantifying the energy/delay trade that
choice encodes:

* longer beacon intervals let idle nodes sleep longer (less energy) but
  every hop waits longer on average (more delay);
* a larger ATIM fraction raises the guaranteed-awake floor
  (``P_awake x fraction``) for every node in the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.experiments.parallel import run_grid
from repro.experiments.runner import AggregateMetrics, aggregate
from repro.experiments.scenarios import ExperimentScale, make_config
from repro.metrics.report import format_table

#: beacon intervals swept (seconds), ATIM fraction fixed at 0.2
BEACON_INTERVALS = (0.1, 0.25, 0.5, 1.0)

#: ATIM fractions swept, beacon interval fixed at 0.25 s
ATIM_FRACTIONS = (0.1, 0.2, 0.4)


@dataclass
class SensitivityResult:
    """Aggregates per (beacon interval) and per (ATIM fraction)."""

    scale_name: str
    rate: float
    by_beacon: Dict[float, AggregateMetrics]
    by_fraction: Dict[float, AggregateMetrics]


def run(scale: ExperimentScale, seed: int = 1, progress: Optional[Callable[[str], None]] = None,
        workers: Optional[int] = None) -> SensitivityResult:
    """Sweep PSM timing for Rcast (static scenario, low rate)."""
    configs = {}
    for beacon in BEACON_INTERVALS:
        configs[("beacon", beacon)] = make_config(
            scale, "rcast", scale.low_rate, mobile=False, seed=seed,
            beacon_interval=beacon, atim_window=0.2 * beacon,
        )
    for fraction in ATIM_FRACTIONS:
        configs[("fraction", fraction)] = make_config(
            scale, "rcast", scale.low_rate, mobile=False, seed=seed,
            beacon_interval=0.25, atim_window=0.25 * fraction,
        )
    runs = run_grid(configs, scale.repetitions, workers=workers)
    by_beacon: Dict[float, AggregateMetrics] = {}
    for beacon in BEACON_INTERVALS:
        by_beacon[beacon] = aggregate(runs[("beacon", beacon)])
        if progress is not None:
            progress(f"beacon={beacon}s: {by_beacon[beacon].describe()}")
    by_fraction: Dict[float, AggregateMetrics] = {}
    for fraction in ATIM_FRACTIONS:
        by_fraction[fraction] = aggregate(runs[("fraction", fraction)])
        if progress is not None:
            progress(f"atim={fraction:.0%}: {by_fraction[fraction].describe()}")
    return SensitivityResult(scale.name, scale.low_rate, by_beacon,
                             by_fraction)


def format_result(result: SensitivityResult) -> str:
    """Two tables: beacon-interval sweep and ATIM-fraction sweep."""
    rows = []
    for beacon, agg in sorted(result.by_beacon.items()):
        rows.append([f"{beacon * 1e3:.0f} ms", agg.total_energy,
                     agg.pdr * 100.0, agg.avg_delay * 1e3])
    beacon_table = format_table(
        ["beacon interval", "energy [J]", "PDR [%]", "delay [ms]"],
        rows,
        title="PSM sensitivity: beacon interval (ATIM fraction fixed at 20%)",
    )
    rows = []
    for fraction, agg in sorted(result.by_fraction.items()):
        rows.append([f"{fraction:.0%}", agg.total_energy, agg.pdr * 100.0,
                     agg.avg_delay * 1e3])
    fraction_table = format_table(
        ["ATIM fraction", "energy [J]", "PDR [%]", "delay [ms]"],
        rows,
        title="PSM sensitivity: ATIM window fraction (beacon fixed at 250 ms)",
    )
    return beacon_table + "\n\n" + fraction_table


__all__ = ["SensitivityResult", "run", "format_result",
           "BEACON_INTERVALS", "ATIM_FRACTIONS"]
