"""Extension study: adaptive P_R policies vs the paper's fixed 1/n.

Runs the ``rcast`` scheme under each receiver-side overhearing policy
(:data:`POLICIES`) on the static scenario at the scale's focus rate, at
one or more node counts.  At non-smoke scales the default node axis is
(100, 1000): the paper's population and a 10x build-out with the arena
area scaled to hold the fig7 node density (the same convention as the
large-scale benchmark).

Reported per (policy, node count) cell:

* the usual :class:`~repro.experiments.runner.AggregateMetrics`,
* the mean empirical overhear rate (elections / decisions),
* policy-specific extras — estimator MAE vs the oracle degree for
  ``degree``, summed arm/exploration histograms for ``bandit``, the mean
  P_R multiplier for ``energy``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.adaptive import BANDIT_ARM_LABELS
from repro.experiments.parallel import run_grid
from repro.experiments.runner import AggregateMetrics, aggregate
from repro.experiments.scenarios import ExperimentScale, make_config
from repro.metrics.collector import RunMetrics
from repro.metrics.report import format_table
from repro.metrics.stats import mean

#: Policies compared, fixed 1/n first (the paper's baseline).
POLICIES = ("fixed", "degree", "energy", "bandit")

#: Grid cell key: (policy, node count).
Cell = Tuple[str, int]


def default_node_counts(scale: ExperimentScale) -> Tuple[int, ...]:
    """Node-count axis: (100, 1000) except at smoke scale."""
    if scale.name == "smoke":
        return (scale.num_nodes,)
    return (100, 1000)


def _arena_for(scale: ExperimentScale, num_nodes: int) -> Tuple[float, float]:
    """Arena holding the scale's node density at ``num_nodes`` (square
    when grown, so the build-out does not degenerate into a long strip)."""
    if num_nodes == scale.num_nodes:
        return scale.arena_w, scale.arena_h
    area = scale.arena_w * scale.arena_h * (num_nodes / scale.num_nodes)
    side = math.sqrt(area)
    return side, side


@dataclass
class AdaptiveCellSummary:
    """One (policy, node count) cell of the study."""

    policy: str
    num_nodes: int
    metrics: AggregateMetrics
    #: mean over replications of elections / decisions
    overhear_rate: float
    overhear_decisions: float
    #: degree policy only: mean |estimate - oracle degree| over warm nodes
    estimator_mae: Optional[float] = None
    #: energy policy only: mean end-of-run P_R multiplier
    mean_multiplier: Optional[float] = None
    #: bandit only: arm selections summed over nodes and replications
    arm_counts: Optional[List[int]] = None
    #: bandit only: the exploration subset of ``arm_counts``
    explore_counts: Optional[List[int]] = None


@dataclass
class AdaptiveStudyResult:
    """All cells of the adaptive-overhearing comparison."""

    scale_name: str
    rate: float
    node_counts: Tuple[int, ...]
    policies: Tuple[str, ...]
    cells: Dict[Cell, AdaptiveCellSummary] = field(default_factory=dict)

    def get(self, policy: str, num_nodes: int) -> AdaptiveCellSummary:
        """Summary for one cell."""
        return self.cells[(policy, num_nodes)]


def _summarize(policy: str, num_nodes: int,
               runs: Sequence[RunMetrics]) -> AdaptiveCellSummary:
    cell = AdaptiveCellSummary(
        policy=policy,
        num_nodes=num_nodes,
        metrics=aggregate(list(runs)),
        overhear_rate=mean([m.empirical_overhear_rate for m in runs]),
        overhear_decisions=mean([float(m.overhear_decisions) for m in runs]),
    )
    summaries = [m.adaptive for m in runs if m.adaptive is not None]
    if policy == "degree":
        maes = [s["estimator_mae"] for s in summaries
                if s.get("estimator_mae") is not None]
        cell.estimator_mae = mean(maes) if maes else None
    elif policy == "energy":
        multipliers = [s["mean_multiplier"] for s in summaries
                       if s.get("mean_multiplier") is not None]
        cell.mean_multiplier = mean(multipliers) if multipliers else None
    elif policy == "bandit":
        arms = [0] * len(BANDIT_ARM_LABELS)
        explores = [0] * len(BANDIT_ARM_LABELS)
        for summary in summaries:
            for i, count in enumerate(summary["arm_counts"]):
                arms[i] += count
            for i, count in enumerate(summary["explore_counts"]):
                explores[i] += count
        cell.arm_counts = arms
        cell.explore_counts = explores
    return cell


def run(
    scale: ExperimentScale,
    seed: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
    node_counts: Optional[Sequence[int]] = None,
) -> AdaptiveStudyResult:
    """Run the policy x node-count grid (static scenario, focus rate)."""
    counts = (tuple(node_counts) if node_counts
              else default_node_counts(scale))
    configs = {}
    for num_nodes in counts:
        arena_w, arena_h = _arena_for(scale, num_nodes)
        for policy in POLICIES:
            configs[(policy, num_nodes)] = make_config(
                scale, "rcast", scale.low_rate, mobile=False, seed=seed,
                num_nodes=num_nodes, arena_w=arena_w, arena_h=arena_h,
                overhearing_policy=policy,
            )
    if progress is not None:
        progress(f"adaptive study: {len(configs)} cells x "
                 f"{scale.repetitions} reps")
    grid = run_grid(configs, scale.repetitions, workers=workers)
    result = AdaptiveStudyResult(
        scale_name=scale.name, rate=scale.low_rate,
        node_counts=counts, policies=POLICIES,
    )
    for key in configs:
        policy, num_nodes = key
        cell = _summarize(policy, num_nodes, grid[key])
        result.cells[key] = cell
        if progress is not None:
            progress(f"[n={num_nodes} {policy}] {cell.metrics.describe()} "
                     f"P_R(emp)={cell.overhear_rate:.3f}")
    return result


def format_result(result: AdaptiveStudyResult) -> str:
    """One comparison table per node count, plus bandit histograms."""
    blocks = []
    for num_nodes in result.node_counts:
        rows = []
        for policy in result.policies:
            cell = result.get(policy, num_nodes)
            agg = cell.metrics
            rows.append([
                policy,
                agg.pdr * 100.0,
                agg.total_energy,
                agg.energy_per_bit * 1e6,
                cell.overhear_rate * 100.0,
            ])
        blocks.append(format_table(
            ["policy", "PDR [%]", "energy [J]", "EPB [uJ/bit]",
             "P_R empirical [%]"],
            rows,
            title=(f"Adaptive overhearing, n={num_nodes}, "
                   f"rate={result.rate} pkt/s, static"),
        ))
        bandit = result.cells.get(("bandit", num_nodes))
        if bandit is not None and bandit.arm_counts is not None:
            pairs = ", ".join(
                f"{label}:{count}" for label, count in
                zip(BANDIT_ARM_LABELS, bandit.arm_counts))
            blocks.append(f"bandit arms (n={num_nodes}): {pairs}")
        degree = result.cells.get(("degree", num_nodes))
        if degree is not None and degree.estimator_mae is not None:
            blocks.append(
                f"degree estimator MAE (n={num_nodes}): "
                f"{degree.estimator_mae:.2f} neighbors")
    return "\n\n".join(blocks)


__all__ = [
    "POLICIES",
    "AdaptiveCellSummary",
    "AdaptiveStudyResult",
    "default_node_counts",
    "format_result",
    "run",
]
