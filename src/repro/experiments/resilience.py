"""Resilience study: scheme degradation under injected faults (extension).

The paper evaluates the schemes on a fault-free network; this extension
asks how gracefully each one degrades when the network misbehaves.  Two
stress axes, swept independently over the static scenario at the paper's
focus rate:

* **crash axis** — a :class:`~repro.faults.plan.RandomCrashes` plan kills
  each node with probability ``f`` (no recovery) at a uniform time in the
  middle of the run, for ``f`` in :data:`CRASH_FRACTIONS`;
* **loss axis** — a :class:`~repro.faults.plan.PacketLoss` plan drops each
  otherwise-successful frame delivery i.i.d. with probability ``p``, for
  ``p`` in :data:`LOSS_RATES`.

Both axes share one fault-free baseline cell per scheme (level 0.0), so
the reported degradation is relative to *this* build's fault-free numbers,
not to an external reference.  Expected shape: PDR falls with either
stress for every scheme; 802.11 holds delivery best (it never sleeps
through a retransmission opportunity) at a flat, maximal energy price,
while Rcast keeps its energy advantage and its PDR within a few points of
ODPM's — randomized overhearing loses redundant route-repair information,
not primary routes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.parallel import run_grid
from repro.experiments.runner import AggregateMetrics, aggregate
from repro.experiments.scenarios import ExperimentScale, make_config
from repro.faults.plan import FaultPlan, PacketLoss, RandomCrashes
from repro.metrics.report import format_series
from repro.network import SimulationConfig

SCHEMES = ("ieee80211", "odpm", "rcast")

#: Crash-axis stress levels: expected fraction of nodes lost mid-run.
CRASH_FRACTIONS = (0.0, 0.1, 0.2, 0.3)

#: Loss-axis stress levels: per-delivery Bernoulli drop probability.
LOSS_RATES = (0.0, 0.05, 0.1, 0.2)

#: Axis key -> (label, level tuple) — level 0.0 is the shared baseline.
AXES = ("crash", "loss")

METRICS = {
    "pdr": lambda a: a.pdr * 100.0,
    "total_energy": lambda a: a.total_energy,
}

#: Grid cell key: (axis, scheme, stress level).
Cell = Tuple[str, str, float]


def _crash_plan(fraction: float, sim_time: float) -> FaultPlan:
    """Permanent random crashes in the middle 60% of the run.

    Crashing strictly inside (0, 0.7*T] leaves time for traffic to start
    and for the survivors' routing to react, so PDR measures adaptation,
    not merely the fraction of flows whose endpoint died.
    """
    return FaultPlan((RandomCrashes(
        fraction=fraction, start=0.1 * sim_time, stop=0.7 * sim_time,
    ),))


def _loss_plan(rate: float) -> FaultPlan:
    return FaultPlan((PacketLoss(rate=rate),))


@dataclass
class ResilienceResult:
    """Per-axis, per-metric, per-scheme series over the stress levels."""

    scale_name: str
    crash_fractions: Tuple[float, ...]
    loss_rates: Tuple[float, ...]
    #: axis -> metric -> scheme -> series (index-aligned with the axis
    #: levels; index 0 is the shared fault-free baseline)
    data: Dict[str, Dict[str, Dict[str, List[float]]]]

    def levels(self, axis: str) -> Tuple[float, ...]:
        """Stress levels of ``axis`` (baseline first)."""
        return self.crash_fractions if axis == "crash" else self.loss_rates

    def pdr_drop(self, axis: str, scheme: str) -> float:
        """PDR points lost between baseline and the worst stress level."""
        series = self.data[axis]["pdr"][scheme]
        return series[0] - series[-1]


def run(scale: ExperimentScale, seed: int = 1,
        progress: Optional[Callable[[str], None]] = None,
        workers: Optional[int] = None,
        overhearing_policy: str = "fixed") -> ResilienceResult:
    """Run both stress sweeps and fold replications into series.

    ``overhearing_policy`` applies the selected adaptive P_R policy to
    the rcast column, asking how each policy degrades under faults.
    """
    sim_time = scale.sim_time

    def cfg(scheme: str, plan: Optional[FaultPlan]) -> SimulationConfig:
        return make_config(scale, scheme, scale.low_rate, mobile=False,
                           seed=seed, faults=plan,
                           overhearing_policy=overhearing_policy)

    configs: Dict[Cell, SimulationConfig] = {}
    for scheme in SCHEMES:
        # One shared baseline per scheme, reported on both axes.
        configs[("baseline", scheme, 0.0)] = cfg(scheme, None)
        for fraction in CRASH_FRACTIONS:
            if fraction > 0.0:
                configs[("crash", scheme, fraction)] = cfg(
                    scheme, _crash_plan(fraction, sim_time))
        for rate in LOSS_RATES:
            if rate > 0.0:
                configs[("loss", scheme, rate)] = cfg(
                    scheme, _loss_plan(rate))

    if progress is not None:
        progress(f"resilience: {len(configs)} cells x "
                 f"{scale.repetitions} reps")
    grid = run_grid(configs, scale.repetitions, workers=workers)
    folded: Dict[Cell, AggregateMetrics] = {
        cell: aggregate(runs) for cell, runs in grid.items()
    }

    def series(axis: str, metric: str, scheme: str) -> List[float]:
        fn = METRICS[metric]
        out = [fn(folded[("baseline", scheme, 0.0)])]
        for level in (CRASH_FRACTIONS if axis == "crash" else LOSS_RATES):
            if level > 0.0:
                out.append(fn(folded[(axis, scheme, level)]))
        return out

    data: Dict[str, Dict[str, Dict[str, List[float]]]] = {
        axis: {
            metric: {scheme: series(axis, metric, scheme)
                     for scheme in SCHEMES}
            for metric in METRICS
        }
        for axis in AXES
    }
    return ResilienceResult(scale.name, CRASH_FRACTIONS, LOSS_RATES, data)


def format_result(result: ResilienceResult) -> str:
    """Text tables for both axes plus per-scheme degradation headlines."""
    titles = {
        "pdr": "packet delivery ratio [%]",
        "total_energy": "total energy [J]",
    }
    axis_labels = {
        "crash": "crash fraction",
        "loss": "loss rate",
    }
    blocks = []
    for axis in AXES:
        for metric, title in titles.items():
            blocks.append(format_series(
                axis_labels[axis], list(result.levels(axis)),
                result.data[axis][metric],
                title=f"resilience: {title} vs {axis_labels[axis]}",
            ))
        drops = ", ".join(
            f"{scheme} -{result.pdr_drop(axis, scheme):.1f}pp"
            for scheme in SCHEMES
        )
        blocks.append(
            f"PDR degradation at max {axis_labels[axis]} "
            f"{result.levels(axis)[-1]}: {drops}"
        )
    return "\n\n".join(blocks)


__all__ = [
    "AXES",
    "CRASH_FRACTIONS",
    "LOSS_RATES",
    "ResilienceResult",
    "SCHEMES",
    "format_result",
    "run",
]
