"""Role numbers: packet-forwarding responsibility per node.

The paper defines a node's *role number* as "a measure of the extent to
which the node lies on the paths between others", derived from the
intermediate nodes of the routes used during packet transmissions.  A node
with a high role number forwards a disproportionate share of traffic —
the preferential-attachment pathology Rcast's randomization dampens.

:class:`RoleTracker` increments each intermediate node's counter every time
a source route is committed to moving a data packet (origination and
salvage re-routes).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np
from numpy.typing import NDArray


class RoleTracker:
    """Counts appearances of each node as a route intermediate."""

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        self._counts = np.zeros(num_nodes, dtype=np.int64)
        self.routes_recorded = 0

    def record_route(self, route: Sequence[int]) -> None:
        """Credit every intermediate node of ``route`` with one role unit."""
        self.routes_recorded += 1
        for node in route[1:-1]:
            self._counts[node] += 1

    def role_number(self, node: int) -> int:
        """Role number of one node."""
        return int(self._counts[node])

    def counts(self) -> NDArray[np.int64]:
        """Copy of the per-node role-number vector."""
        return self._counts.copy()

    def max_role(self) -> int:
        """Largest role number in the network (paper Fig. 9 discussion)."""
        return int(self._counts.max()) if self.num_nodes else 0

    def top_k(self, k: int) -> List[Tuple[int, int]]:
        """The ``k`` most-burdened nodes as (node, role) pairs."""
        order = np.argsort(self._counts)[::-1][:k]
        return [(int(n), int(self._counts[n])) for n in order]


__all__ = ["RoleTracker"]
