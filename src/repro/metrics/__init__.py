"""Measurement: per-run metric collection and summary statistics.

:class:`~repro.metrics.collector.MetricsCollector` receives events from the
routing/traffic layers during a run; at the end it is combined with the
radios' energy meters into a :class:`~repro.metrics.collector.RunMetrics`
holding everything the paper's figures plot: per-node energy, variance,
PDR, average delay, energy-per-bit, normalized routing overhead and role
numbers.
"""

from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.metrics.lifetime import (
    LifetimeReport,
    lifetime_from_metrics,
    project_lifetime,
)
from repro.metrics.role import RoleTracker
from repro.metrics.stats import (
    confidence_interval_95,
    mean,
    percentile,
    sample_variance,
)

__all__ = [
    "LifetimeReport",
    "MetricsCollector",
    "RoleTracker",
    "RunMetrics",
    "lifetime_from_metrics",
    "project_lifetime",
    "confidence_interval_95",
    "mean",
    "percentile",
    "sample_variance",
]
