"""Network-lifetime analysis.

The paper motivates energy balance with *network lifetime*: in a MANET the
nodes are the routing infrastructure, so the relevant lifetime is not the
average battery but the first (or k-th) battery to die — which is exactly
what load concentration ruins.

Given a run's per-node energy profile and a battery budget, this module
projects each node's depletion time under a continued identical duty cycle
(per-node mean power is an unbiased estimate of its long-run power under
the paper's stationary CBR workloads) and derives the lifetime metrics the
literature reports: time to first death, time to partition-proxy (k-th
death), and the fraction of the population alive at a horizon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np
from numpy.typing import NDArray

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.metrics.collector import RunMetrics


@dataclass(frozen=True)
class LifetimeReport:
    """Projected battery-depletion structure of one run."""

    battery_joules: float
    sim_time: float
    #: per-node projected depletion times, seconds (node-indexed)
    depletion_times: NDArray[np.float64]

    @property
    def first_death(self) -> float:
        """Time until the first node depletes (the classic lifetime)."""
        return float(self.depletion_times.min())

    def kth_death(self, k: int) -> float:
        """Time until the k-th node depletes (1-indexed)."""
        if not 1 <= k <= self.depletion_times.size:
            raise ConfigurationError(
                f"k must be in [1, {self.depletion_times.size}], got {k}"
            )
        return float(np.sort(self.depletion_times)[k - 1])

    def alive_fraction(self, at_time: float) -> float:
        """Fraction of nodes still alive at ``at_time``."""
        return float((self.depletion_times > at_time).mean())

    @property
    def half_life(self) -> float:
        """Time until half the population has depleted."""
        return self.kth_death(max(1, self.depletion_times.size // 2))

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"first death {self.first_death:.1f}s, "
            f"half-life {self.half_life:.1f}s, "
            f"alive@{self.sim_time:.0f}s "
            f"{self.alive_fraction(self.sim_time) * 100:.0f}%"
        )


def project_lifetime(
    node_energy: Sequence[float],
    sim_time: float,
    battery_joules: float,
) -> LifetimeReport:
    """Project depletion times from a run's per-node energy totals.

    Each node's mean power over the run (``energy / sim_time``) is assumed
    to persist; depletion time is ``battery / mean_power``.
    """
    if sim_time <= 0:
        raise ConfigurationError("sim_time must be positive")
    if battery_joules <= 0:
        raise ConfigurationError("battery_joules must be positive")
    energy = np.asarray(node_energy, dtype=float)
    if energy.size == 0:
        raise ConfigurationError("need at least one node")
    if (energy < 0).any():
        raise ConfigurationError("negative node energy")
    mean_power = np.maximum(energy / sim_time, 1e-12)
    return LifetimeReport(
        battery_joules=battery_joules,
        sim_time=sim_time,
        depletion_times=battery_joules / mean_power,
    )


def lifetime_from_metrics(metrics: "RunMetrics",
                          battery_joules: float) -> LifetimeReport:
    """Convenience: project from a :class:`~repro.metrics.collector.RunMetrics`."""
    return project_lifetime(metrics.node_energy, metrics.sim_time,
                            battery_joules)


__all__ = ["LifetimeReport", "project_lifetime", "lifetime_from_metrics"]
