"""Run-time metric collection and the end-of-run summary.

The collector is shared by all nodes; the routing and traffic layers feed
it events and the network harness finalizes it with the per-node energy
meters.  Everything the paper's evaluation section reports comes out of
:class:`RunMetrics`:

* total / per-node energy and its variance (Figs. 5, 6),
* packet delivery ratio and energy-per-bit (Fig. 7),
* average end-to-end delay and normalized routing overhead (Fig. 8),
* role numbers (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence

import numpy as np
from numpy.typing import NDArray

from repro.metrics.role import RoleTracker
from repro.metrics.stats import mean, sample_variance


@dataclass
class _DataRecord:
    uid: int
    src: int
    dst: int
    sent_at: float
    payload_bytes: int
    delivered_at: Optional[float] = None
    drop_reason: Optional[str] = None


class MetricsCollector:
    """Event sink for one simulation run."""

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        self.roles = RoleTracker(num_nodes)
        self._data: Dict[int, _DataRecord] = {}
        #: per-hop transmissions by packet kind
        self.transmissions: Dict[str, int] = {
            "data": 0, "rreq": 0, "rrep": 0, "rerr": 0,
        }
        self.link_breaks = 0
        self.overheard_by_node = np.zeros(num_nodes, dtype=np.int64)

    # ------------------------------------------------------------------
    # Events (called by routing/traffic layers)
    # ------------------------------------------------------------------

    def data_originated(self, uid: int, src: int, dst: int, now: float,
                        payload_bytes: int) -> None:
        """Record an application packet entering the network."""
        self._data[uid] = _DataRecord(uid, src, dst, now, payload_bytes)

    def data_delivered(self, uid: int, now: float) -> None:
        """Record end-to-end delivery (duplicates are ignored)."""
        record = self._data.get(uid)
        if record is None or record.delivered_at is not None:
            return  # unknown or duplicate delivery: count once
        record.delivered_at = now

    def data_dropped(self, uid: int, reason: str) -> None:
        """Record a drop with its reason (ignored after delivery)."""
        record = self._data.get(uid)
        if record is None or record.delivered_at is not None:
            return
        record.drop_reason = reason

    def transmission(self, kind: str) -> None:
        """Count one per-hop transmission of the given packet kind."""
        self.transmissions[kind] = self.transmissions.get(kind, 0) + 1

    def route_used(self, route: Sequence[int]) -> None:
        """Credit role numbers for a source route committed to data."""
        self.roles.record_route(route)

    def link_break(self) -> None:
        """Count one detected link break."""
        self.link_breaks += 1

    def overheard(self, node: int) -> None:
        """Count one promiscuously received packet at ``node``."""
        self.overheard_by_node[node] += 1

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def finalize(
        self,
        scheme: str,
        sim_time: float,
        node_energy: Sequence[float],
        node_awake_time: Sequence[float],
        events_processed: int = 0,
        fault_counts: Optional[Dict[str, int]] = None,
    ) -> "RunMetrics":
        """Combine collected events with energy meters into a summary."""
        records = list(self._data.values())
        sent = len(records)
        delivered = [r for r in records if r.delivered_at is not None]
        delays = [r.delivered_at - r.sent_at for r in delivered
                  if r.delivered_at is not None]
        delivered_bits = sum(r.payload_bytes * 8 for r in delivered)
        energy = np.asarray(node_energy, dtype=float)
        total_energy = float(energy.sum())
        control = sum(self.transmissions.get(k, 0)
                      for k in ("rreq", "rrep", "rerr"))
        drop_reasons: Dict[str, int] = {}
        for record in records:
            if record.delivered_at is None:
                reason = record.drop_reason or "in_flight"
                drop_reasons[reason] = drop_reasons.get(reason, 0) + 1
        return RunMetrics(
            scheme=scheme,
            sim_time=sim_time,
            num_nodes=self.num_nodes,
            data_sent=sent,
            data_delivered=len(delivered),
            pdr=(len(delivered) / sent) if sent else 0.0,
            avg_delay=mean(delays),
            node_energy=energy,
            node_awake_time=np.asarray(node_awake_time, dtype=float),
            total_energy=total_energy,
            energy_variance=sample_variance(energy.tolist()),
            energy_per_bit=(total_energy / delivered_bits) if delivered_bits else float("inf"),
            control_transmissions=control,
            transmissions=dict(self.transmissions),
            normalized_overhead=(control / len(delivered)) if delivered else float("inf"),
            role_numbers=self.roles.counts(),
            link_breaks=self.link_breaks,
            overheard_by_node=self.overheard_by_node.copy(),
            drop_reasons=drop_reasons,
            events_processed=events_processed,
            fault_counts=dict(fault_counts) if fault_counts else {},
        )


@dataclass
class RunMetrics:
    """Summary of one simulation run (the paper's reported quantities)."""

    scheme: str
    sim_time: float
    num_nodes: int
    data_sent: int
    data_delivered: int
    pdr: float
    avg_delay: float
    node_energy: NDArray[np.float64]
    node_awake_time: NDArray[np.float64]
    total_energy: float
    energy_variance: float
    energy_per_bit: float
    control_transmissions: int
    transmissions: Dict[str, int]
    normalized_overhead: float
    role_numbers: NDArray[np.int64]
    link_breaks: int
    overheard_by_node: NDArray[np.int64]
    drop_reasons: Dict[str, int] = field(default_factory=dict)
    #: engine events fired during the run — deterministic for a given
    #: (config, seed), unlike wall time, so it is safe in bit-identity tests
    events_processed: int = 0
    #: non-zero fault-injection counters (empty for fault-free runs)
    fault_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def mean_node_energy(self) -> float:
        """Average per-node energy in joules."""
        return float(self.node_energy.mean()) if self.node_energy.size else 0.0

    def sorted_node_energy(self) -> NDArray[np.float64]:
        """Per-node energy, ascending (the paper's Fig. 5 presentation)."""
        return np.sort(self.node_energy)

    def describe(self) -> str:
        """One-line summary for logs."""
        return (
            f"{self.scheme}: E={self.total_energy:.1f}J "
            f"var={self.energy_variance:.1f} PDR={self.pdr * 100:.1f}% "
            f"delay={self.avg_delay * 1e3:.1f}ms "
            f"EPB={self.energy_per_bit * 1e6:.2f}uJ/bit "
            f"ovh={self.normalized_overhead:.2f}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict of this run (vectors as lists, inf as None)."""

        def safe(value: float) -> Optional[float]:
            """None for non-finite values (JSON has no inf)."""
            return None if not np.isfinite(value) else float(value)

        return {
            "scheme": self.scheme,
            "sim_time": self.sim_time,
            "num_nodes": self.num_nodes,
            "data_sent": self.data_sent,
            "data_delivered": self.data_delivered,
            "pdr": safe(self.pdr),
            "avg_delay": safe(self.avg_delay),
            "total_energy": safe(self.total_energy),
            "energy_variance": safe(self.energy_variance),
            "energy_per_bit": safe(self.energy_per_bit),
            "control_transmissions": self.control_transmissions,
            "transmissions": dict(self.transmissions),
            "normalized_overhead": safe(self.normalized_overhead),
            "link_breaks": self.link_breaks,
            "drop_reasons": dict(self.drop_reasons),
            "events_processed": self.events_processed,
            "node_energy": [float(v) for v in self.node_energy],
            "node_awake_time": [float(v) for v in self.node_awake_time],
            "role_numbers": [int(v) for v in self.role_numbers],
        } | ({"fault_counts": dict(self.fault_counts)}
             if self.fault_counts else {})


__all__ = ["MetricsCollector", "RunMetrics"]
