"""Run-time metric collection and the end-of-run summary.

The collector is shared by all nodes; the routing and traffic layers feed
it events and the network harness finalizes it with the per-node energy
meters.  Everything the paper's evaluation section reports comes out of
:class:`RunMetrics`:

* total / per-node energy and its variance (Figs. 5, 6),
* packet delivery ratio and energy-per-bit (Fig. 7),
* average end-to-end delay and normalized routing overhead (Fig. 8),
* role numbers (Fig. 9).

Frontier compaction
-------------------
Historically the collector kept one ``_DataRecord`` per application
packet for the whole run, so memory grew O(packets).  Records are now
folded into running accumulators as soon as their outcome is settled,
walking the uid frontier strictly in origination order:

* a *delivered* head folds immediately;
* a *dropped* head folds once ``drop_grace_s`` of virtual time has
  passed since the drop — drops are not terminal in this stack (an
  ``ifq_overflow`` victim can be retransmitted and delivered seconds
  later), so the grace period lets late deliveries land first;
* an *in-flight* head blocks the frontier (packets resolve within the
  grace bound in practice) until the ``inflight_hold_s`` safety horizon.

Because Python's ``sum`` is a strict left fold and dict iteration is
insertion-ordered, folding in frontier order reproduces the batch-mode
``sum(delays)`` / ``drop_reasons`` insertion order exactly: the
finalized :class:`RunMetrics` is bit-identical to the retained-record
implementation.  Post-fold deliveries or re-drops (possible only past
the grace/hold horizons) are detected via a bounded recently-folded set
and counted in :attr:`MetricsCollector.compaction_conflicts`.

With ``streaming=True`` the same fold path additionally feeds
fixed-memory distribution aggregates (:mod:`repro.obs.stream`):
delay and per-node energy-per-bit summaries appear as the optional
``delay_dist`` / ``energy_per_bit_dist`` fields of :class:`RunMetrics`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Optional, Sequence, Set

import numpy as np
from numpy.typing import NDArray

from repro.metrics.role import RoleTracker
from repro.metrics.stats import sample_variance
from repro.obs.stream import StreamStats

#: Virtual seconds a dropped record lingers before folding.  Measured
#: drop→redelivery gaps on the seed workloads max out at ~16.5 s; 60 s
#: bounds the pending window at traffic_rate × 60 records.
DROP_GRACE_S = 60.0

#: Safety horizon for an in-flight frontier head.  Never reached on the
#: seed workloads (heads resolve within the drop grace); folding here
#: trades exactness for boundedness and is surfaced via
#: ``compaction_conflicts`` if a late delivery contradicts the fold.
INFLIGHT_HOLD_S = 600.0

#: Cap on the recently-folded-undelivered uid set used for conflict
#: detection.  It only grows when records fold undelivered, so in
#: healthy runs it tracks the drop tail; the cap keeps pathological
#: drop storms from reintroducing O(packets) memory.
_FOLDED_SET_CAP = 4096


@dataclass
class _DataRecord:
    uid: int
    src: int
    dst: int
    sent_at: float
    payload_bytes: int
    delivered_at: Optional[float] = None
    drop_reason: Optional[str] = None
    #: collector-clock timestamp of the (latest) drop, for grace aging
    dropped_at: float = 0.0


class MetricsCollector:
    """Event sink for one simulation run."""

    def __init__(self, num_nodes: int, streaming: bool = False,
                 seed: int = 0, drop_grace_s: float = DROP_GRACE_S,
                 inflight_hold_s: float = INFLIGHT_HOLD_S) -> None:
        self.num_nodes = num_nodes
        self.roles = RoleTracker(num_nodes)
        #: unresolved packets only — settled records fold into the
        #: accumulators below, so this stays bounded by the in-flight
        #: window, not the run length
        self._data: Dict[int, _DataRecord] = {}
        #: per-hop transmissions by packet kind
        self.transmissions: Dict[str, int] = {
            "data": 0, "rreq": 0, "rrep": 0, "rerr": 0,
        }
        self.link_breaks = 0
        self.overheard_by_node = np.zeros(num_nodes, dtype=np.int64)
        self.drop_grace_s = drop_grace_s
        self.inflight_hold_s = inflight_hold_s
        #: outcome reversals observed after a record was folded (a
        #: delivery or re-drop arriving past the grace/hold horizon)
        self.compaction_conflicts = 0
        # -- fold accumulators (mirror batch finalize, left-fold order) --
        self._sent = 0
        self._n_delivered = 0
        self._delay_sum = 0.0
        self._delivered_bits = 0
        self._drop_counts: Dict[str, int] = {}
        self._clock = 0.0
        self._folded_undelivered: Set[int] = set()
        self._folded_order: Deque[int] = deque()
        # -- streaming distribution aggregates (fixed memory) --
        self.streaming = streaming
        self._delay_stats: Optional[StreamStats] = (
            StreamStats("delay", seed) if streaming else None)

    # ------------------------------------------------------------------
    # Events (called by routing/traffic layers)
    # ------------------------------------------------------------------

    def data_originated(self, uid: int, src: int, dst: int, now: float,
                        payload_bytes: int) -> None:
        """Record an application packet entering the network."""
        if uid not in self._data:
            self._sent += 1
        self._data[uid] = _DataRecord(uid, src, dst, now, payload_bytes)
        if now > self._clock:
            self._clock = now
        self._advance_frontier()

    def data_delivered(self, uid: int, now: float) -> None:
        """Record end-to-end delivery (duplicates are ignored)."""
        if now > self._clock:
            self._clock = now
        record = self._data.get(uid)
        if record is None:
            if uid in self._folded_undelivered:
                self.compaction_conflicts += 1
            return
        if record.delivered_at is not None:
            return  # duplicate delivery: count once
        record.delivered_at = now
        self._advance_frontier()

    def data_dropped(self, uid: int, reason: str) -> None:
        """Record a drop with its reason (ignored after delivery)."""
        record = self._data.get(uid)
        if record is None:
            if uid in self._folded_undelivered:
                self.compaction_conflicts += 1
            return
        if record.delivered_at is not None:
            return
        record.drop_reason = reason
        record.dropped_at = self._clock
        self._advance_frontier()

    def transmission(self, kind: str) -> None:
        """Count one per-hop transmission of the given packet kind."""
        self.transmissions[kind] = self.transmissions.get(kind, 0) + 1

    def route_used(self, route: Sequence[int]) -> None:
        """Credit role numbers for a source route committed to data."""
        self.roles.record_route(route)

    def link_break(self) -> None:
        """Count one detected link break."""
        self.link_breaks += 1

    def overheard(self, node: int) -> None:
        """Count one promiscuously received packet at ``node``."""
        self.overheard_by_node[node] += 1

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    @property
    def pending_records(self) -> int:
        """Unresolved records currently retained (bounded, not O(run))."""
        return len(self._data)

    def _advance_frontier(self) -> None:
        """Fold settled records from the head of the uid frontier.

        Folding strictly from the head keeps the fold order identical to
        batch mode's insertion-order iteration, which is what makes the
        running ``_delay_sum`` left fold and ``_drop_counts`` insertion
        order bit-compatible with the retained-record implementation.
        """
        data = self._data
        while data:
            record = next(iter(data.values()))
            if record.delivered_at is not None:
                self._fold_delivered(record)
            elif record.drop_reason is not None:
                if self._clock - record.dropped_at < self.drop_grace_s:
                    break  # late redelivery may still land
                self._fold_undelivered(record)
            else:
                if self._clock - record.sent_at < self.inflight_hold_s:
                    break  # genuinely in flight: blocks the frontier
                self._fold_undelivered(record)
            del data[record.uid]

    def _fold_delivered(self, record: _DataRecord) -> None:
        assert record.delivered_at is not None
        delay = record.delivered_at - record.sent_at
        self._n_delivered += 1
        self._delay_sum += delay
        self._delivered_bits += record.payload_bytes * 8
        if self._delay_stats is not None:
            self._delay_stats.push(delay)

    def _fold_undelivered(self, record: _DataRecord) -> None:
        reason = record.drop_reason or "in_flight"
        self._drop_counts[reason] = self._drop_counts.get(reason, 0) + 1
        self._folded_undelivered.add(record.uid)
        self._folded_order.append(record.uid)
        while len(self._folded_order) > _FOLDED_SET_CAP:
            self._folded_undelivered.discard(self._folded_order.popleft())

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def finalize(
        self,
        scheme: str,
        sim_time: float,
        node_energy: Sequence[float],
        node_awake_time: Sequence[float],
        events_processed: int = 0,
        fault_counts: Optional[Dict[str, int]] = None,
        overhear_decisions: int = 0,
        overhear_elections: int = 0,
        adaptive: Optional[Dict[str, Any]] = None,
    ) -> "RunMetrics":
        """Combine collected events with energy meters into a summary."""
        # Drain the frontier: at end of run every remaining record is
        # settled by fiat (undelivered ⇒ its drop reason, or in_flight).
        for record in self._data.values():
            if record.delivered_at is not None:
                self._fold_delivered(record)
            else:
                self._fold_undelivered(record)
        self._data.clear()
        sent = self._sent
        n_delivered = self._n_delivered
        energy = np.asarray(node_energy, dtype=float)
        total_energy = float(energy.sum())
        control = sum(self.transmissions.get(k, 0)
                      for k in ("rreq", "rrep", "rerr"))
        delay_dist: Optional[Dict[str, Any]] = None
        energy_per_bit_dist: Optional[Dict[str, Any]] = None
        if self._delay_stats is not None:
            delay_dist = self._delay_stats.summary()
            energy_per_bit_dist = self._energy_per_bit_summary(energy)
        return RunMetrics(
            scheme=scheme,
            sim_time=sim_time,
            num_nodes=self.num_nodes,
            data_sent=sent,
            data_delivered=n_delivered,
            pdr=(n_delivered / sent) if sent else 0.0,
            avg_delay=(float(self._delay_sum) / n_delivered
                       if n_delivered else 0.0),
            node_energy=energy,
            node_awake_time=np.asarray(node_awake_time, dtype=float),
            total_energy=total_energy,
            energy_variance=sample_variance(energy.tolist()),
            energy_per_bit=((total_energy / self._delivered_bits)
                            if self._delivered_bits else float("inf")),
            control_transmissions=control,
            transmissions=dict(self.transmissions),
            normalized_overhead=((control / n_delivered)
                                 if n_delivered else float("inf")),
            role_numbers=self.roles.counts(),
            link_breaks=self.link_breaks,
            overheard_by_node=self.overheard_by_node.copy(),
            drop_reasons=dict(self._drop_counts),
            events_processed=events_processed,
            fault_counts=dict(fault_counts) if fault_counts else {},
            delay_dist=delay_dist,
            energy_per_bit_dist=energy_per_bit_dist,
            compaction_conflicts=self.compaction_conflicts,
            overhear_decisions=overhear_decisions,
            overhear_elections=overhear_elections,
            adaptive=dict(adaptive) if adaptive is not None else None,
        )

    def _energy_per_bit_summary(
            self, energy: NDArray[np.float64]) -> Optional[Dict[str, Any]]:
        """Per-node energy-per-delivered-bit distribution.

        Each node's energy is divided by its fair share of delivered
        bits (``delivered_bits / num_nodes``), so the distribution mean
        matches the run-level ``energy_per_bit`` to floating-point
        accuracy.  ``None`` when nothing was delivered (the run-level
        value is infinite).
        """
        if not self._delivered_bits or not self.num_nodes:
            return None
        # Folded in node-id order — deterministic, like every stream here.
        stats = StreamStats("energy_per_bit", 0, reservoir_k=1)
        share = self._delivered_bits / self.num_nodes
        for value in energy:
            stats.push(float(value) / share)
        summary = stats.summary()
        del summary["reservoir"]  # node order is not a random sample
        return summary


@dataclass
class RunMetrics:
    """Summary of one simulation run (the paper's reported quantities)."""

    scheme: str
    sim_time: float
    num_nodes: int
    data_sent: int
    data_delivered: int
    pdr: float
    avg_delay: float
    node_energy: NDArray[np.float64]
    node_awake_time: NDArray[np.float64]
    total_energy: float
    energy_variance: float
    energy_per_bit: float
    control_transmissions: int
    transmissions: Dict[str, int]
    normalized_overhead: float
    role_numbers: NDArray[np.int64]
    link_breaks: int
    overheard_by_node: NDArray[np.int64]
    drop_reasons: Dict[str, int] = field(default_factory=dict)
    #: engine events fired during the run — deterministic for a given
    #: (config, seed), unlike wall time, so it is safe in bit-identity tests
    events_processed: int = 0
    #: non-zero fault-injection counters (empty for fault-free runs)
    fault_counts: Dict[str, int] = field(default_factory=dict)
    #: streaming-mode distribution summaries (None in batch mode)
    delay_dist: Optional[Dict[str, Any]] = None
    energy_per_bit_dist: Optional[Dict[str, Any]] = None
    #: outcome reversals past the compaction horizon (0 in healthy runs)
    compaction_conflicts: int = 0
    #: receiver-side RANDOMIZED decisions drawn across all nodes
    overhear_decisions: int = 0
    #: decisions that elected to overhear (``overhears`` on the deciders)
    overhear_elections: int = 0
    #: adaptive-policy run summary (None on the fixed path — the three
    #: fields above then stay out of :meth:`to_dict`, keeping fixed-run
    #: exports byte-identical to pre-adaptive builds)
    adaptive: Optional[Dict[str, Any]] = None

    @property
    def empirical_overhear_rate(self) -> float:
        """Fraction of RANDOMIZED decisions that chose to overhear."""
        return (self.overhear_elections / self.overhear_decisions
                if self.overhear_decisions else 0.0)

    @property
    def mean_node_energy(self) -> float:
        """Average per-node energy in joules."""
        return float(self.node_energy.mean()) if self.node_energy.size else 0.0

    def sorted_node_energy(self) -> NDArray[np.float64]:
        """Per-node energy, ascending (the paper's Fig. 5 presentation)."""
        return np.sort(self.node_energy)

    def describe(self) -> str:
        """One-line summary for logs."""
        return (
            f"{self.scheme}: E={self.total_energy:.1f}J "
            f"var={self.energy_variance:.1f} PDR={self.pdr * 100:.1f}% "
            f"delay={self.avg_delay * 1e3:.1f}ms "
            f"EPB={self.energy_per_bit * 1e6:.2f}uJ/bit "
            f"ovh={self.normalized_overhead:.2f}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict of this run (vectors as lists, inf as None)."""

        def safe(value: float) -> Optional[float]:
            """None for non-finite values (JSON has no inf)."""
            return None if not np.isfinite(value) else float(value)

        return {
            "scheme": self.scheme,
            "sim_time": self.sim_time,
            "num_nodes": self.num_nodes,
            "data_sent": self.data_sent,
            "data_delivered": self.data_delivered,
            "pdr": safe(self.pdr),
            "avg_delay": safe(self.avg_delay),
            "total_energy": safe(self.total_energy),
            "energy_variance": safe(self.energy_variance),
            "energy_per_bit": safe(self.energy_per_bit),
            "control_transmissions": self.control_transmissions,
            "transmissions": dict(self.transmissions),
            "normalized_overhead": safe(self.normalized_overhead),
            "link_breaks": self.link_breaks,
            "drop_reasons": dict(self.drop_reasons),
            "events_processed": self.events_processed,
            "node_energy": [float(v) for v in self.node_energy],
            "node_awake_time": [float(v) for v in self.node_awake_time],
            "role_numbers": [int(v) for v in self.role_numbers],
        } | ({"fault_counts": dict(self.fault_counts)}
             if self.fault_counts else {}) \
          | ({"delay_dist": self.delay_dist}
             if self.delay_dist is not None else {}) \
          | ({"energy_per_bit_dist": self.energy_per_bit_dist}
             if self.energy_per_bit_dist is not None else {}) \
          | ({"compaction_conflicts": self.compaction_conflicts}
             if self.compaction_conflicts else {}) \
          | ({"overhear_decisions": self.overhear_decisions,
              "overhear_elections": self.overhear_elections,
              "empirical_overhear_rate": self.empirical_overhear_rate,
              "adaptive": dict(self.adaptive)}
             if self.adaptive is not None else {})


__all__ = ["MetricsCollector", "RunMetrics",
           "DROP_GRACE_S", "INFLIGHT_HOLD_S"]
