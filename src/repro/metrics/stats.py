"""Small, dependency-light statistics helpers.

numpy is available, but these helpers accept plain sequences, define edge
cases (empty input) explicitly, and always return Python floats so metric
dataclasses stay serialization-friendly.
"""

from __future__ import annotations

import math
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for empty input."""
    values = list(values)
    if not values:
        return 0.0
    return float(sum(values)) / len(values)


def sample_variance(values: Sequence[float]) -> float:
    """Unbiased (n-1) sample variance; 0.0 for fewer than two values."""
    values = list(values)
    n = len(values)
    if n < 2:
        return 0.0
    mu = mean(values)
    return sum((v - mu) ** 2 for v in values) / (n - 1)


def population_variance(values: Sequence[float]) -> float:
    """Population (n) variance; 0.0 for empty input."""
    values = list(values)
    if not values:
        return 0.0
    mu = mean(values)
    return sum((v - mu) ** 2 for v in values) / len(values)


def std_dev(values: Sequence[float]) -> float:
    """Sample standard deviation."""
    return math.sqrt(sample_variance(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]; 0.0 for empty input."""
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return float(ordered[lo] * (1 - frac) + ordered[hi] * frac)


#: Two-sided 95% critical values of Student's t distribution.  The paper's
#: evaluation uses n = 10 repetitions (df = 9, t = 2.262); the normal
#: z = 1.96 understates the half-width by ~13% at that sample size.
_T_CRITICAL_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
    40: 2.021, 60: 2.000, 120: 1.980,
}

#: Large-sample (df -> infinity) limit: the normal z value.
_T_CRITICAL_95_INF = 1.960


def t_critical_95(df: int) -> float:
    """Two-sided 95% Student-t critical value for ``df`` degrees of freedom.

    Exact table values for df <= 30 and the standard anchors 40/60/120;
    in between, linear interpolation in 1/df (the conventional table
    interpolation); beyond 120, the normal limit 1.960.
    """
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    exact = _T_CRITICAL_95.get(df)
    if exact is not None:
        return exact
    if df > 120:
        return _T_CRITICAL_95_INF
    lo = max(anchor for anchor in _T_CRITICAL_95 if anchor < df)
    hi = min(anchor for anchor in _T_CRITICAL_95 if anchor > df)
    frac = (1.0 / lo - 1.0 / df) / (1.0 / lo - 1.0 / hi)
    return _T_CRITICAL_95[lo] + frac * (_T_CRITICAL_95[hi] - _T_CRITICAL_95[lo])


def confidence_interval_95(values: Sequence[float]) -> float:
    """Half-width of the Student-t 95% CI of the mean.

    The t critical value (not the normal z = 1.96) is required at the
    paper's sample sizes: with 10 repetitions the correct multiplier is
    t(9) = 2.262.
    """
    values = list(values)
    n = len(values)
    if n < 2:
        return 0.0
    return t_critical_95(n - 1) * math.sqrt(sample_variance(values) / n)


__all__ = [
    "mean",
    "sample_variance",
    "population_variance",
    "std_dev",
    "percentile",
    "t_critical_95",
    "confidence_interval_95",
]
