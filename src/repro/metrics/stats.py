"""Small, dependency-light statistics helpers.

numpy is available, but these helpers accept plain sequences, define edge
cases (empty input) explicitly, and always return Python floats so metric
dataclasses stay serialization-friendly.
"""

from __future__ import annotations

import math
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for empty input."""
    values = list(values)
    if not values:
        return 0.0
    return float(sum(values)) / len(values)


def sample_variance(values: Sequence[float]) -> float:
    """Unbiased (n-1) sample variance; 0.0 for fewer than two values."""
    values = list(values)
    n = len(values)
    if n < 2:
        return 0.0
    mu = mean(values)
    return sum((v - mu) ** 2 for v in values) / (n - 1)


def population_variance(values: Sequence[float]) -> float:
    """Population (n) variance; 0.0 for empty input."""
    values = list(values)
    if not values:
        return 0.0
    mu = mean(values)
    return sum((v - mu) ** 2 for v in values) / len(values)


def std_dev(values: Sequence[float]) -> float:
    """Sample standard deviation."""
    return math.sqrt(sample_variance(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]; 0.0 for empty input."""
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return float(ordered[lo] * (1 - frac) + ordered[hi] * frac)


def confidence_interval_95(values: Sequence[float]) -> float:
    """Half-width of the normal-approximation 95% CI of the mean."""
    values = list(values)
    n = len(values)
    if n < 2:
        return 0.0
    return 1.96 * math.sqrt(sample_variance(values) / n)


__all__ = [
    "mean",
    "sample_variance",
    "population_variance",
    "std_dev",
    "percentile",
    "confidence_interval_95",
]
