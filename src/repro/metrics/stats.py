"""Small, dependency-light statistics helpers.

numpy is available, but these helpers accept plain sequences, define edge
cases (empty input) explicitly, and always return Python floats so metric
dataclasses stay serialization-friendly.
"""

from __future__ import annotations

import math
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for empty input."""
    values = list(values)
    if not values:
        return 0.0
    return float(sum(values)) / len(values)


def sample_variance(values: Sequence[float]) -> float:
    """Unbiased (n-1) sample variance; 0.0 for fewer than two values."""
    values = list(values)
    n = len(values)
    if n < 2:
        return 0.0
    mu = mean(values)
    return sum((v - mu) ** 2 for v in values) / (n - 1)


def population_variance(values: Sequence[float]) -> float:
    """Population (n) variance; 0.0 for empty input."""
    values = list(values)
    if not values:
        return 0.0
    mu = mean(values)
    return sum((v - mu) ** 2 for v in values) / len(values)


def std_dev(values: Sequence[float]) -> float:
    """Sample standard deviation."""
    return math.sqrt(sample_variance(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]; 0.0 for empty input."""
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return float(ordered[lo] * (1 - frac) + ordered[hi] * frac)


#: Two-sided 95% critical values of Student's t distribution.  The paper's
#: evaluation uses n = 10 repetitions (df = 9, t = 2.262); the normal
#: z = 1.96 understates the half-width by ~13% at that sample size.
_T_CRITICAL_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
    40: 2.021, 60: 2.000, 120: 1.980,
}

#: Large-sample (df -> infinity) limit: the normal z value.
_T_CRITICAL_95_INF = 1.960


def t_critical_95(df: int) -> float:
    """Two-sided 95% Student-t critical value for ``df`` degrees of freedom.

    Exact table values for df <= 30 and the standard anchors 40/60/120;
    in between, linear interpolation in 1/df (the conventional table
    interpolation); beyond 120, the normal limit 1.960.
    """
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    exact = _T_CRITICAL_95.get(df)
    if exact is not None:
        return exact
    if df > 120:
        return _T_CRITICAL_95_INF
    lo = max(anchor for anchor in _T_CRITICAL_95 if anchor < df)
    hi = min(anchor for anchor in _T_CRITICAL_95 if anchor > df)
    frac = (1.0 / lo - 1.0 / df) / (1.0 / lo - 1.0 / hi)
    return _T_CRITICAL_95[lo] + frac * (_T_CRITICAL_95[hi] - _T_CRITICAL_95[lo])


def confidence_interval_95(values: Sequence[float]) -> float:
    """Half-width of the Student-t 95% CI of the mean.

    The t critical value (not the normal z = 1.96) is required at the
    paper's sample sizes: with 10 repetitions the correct multiplier is
    t(9) = 2.262.
    """
    values = list(values)
    n = len(values)
    if n < 2:
        return 0.0
    return t_critical_95(n - 1) * math.sqrt(sample_variance(values) / n)


# ---------------------------------------------------------------------------
# Exact binomial (Clopper–Pearson) machinery — scipy-free.
# ---------------------------------------------------------------------------


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (modified Lentz)."""
    max_iter = 300
    eps = 3e-14
    tiny = 1e-300
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, max_iter + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < eps:
            return h
    raise ValueError(f"incomplete beta failed to converge (a={a}, b={b}, x={x})")


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """I_x(a, b): the Beta(a, b) CDF at ``x``, for a, b > 0, x in [0, 1]."""
    if a <= 0 or b <= 0:
        raise ValueError(f"need a, b > 0, got a={a}, b={b}")
    if not 0.0 <= x <= 1.0:
        raise ValueError(f"x must be in [0, 1], got {x}")
    if x == 0.0:
        return 0.0
    if x == 1.0:
        return 1.0
    ln_front = (math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
                + a * math.log(x) + b * math.log(1.0 - x))
    front = math.exp(ln_front)
    # The continued fraction converges fast for x < (a+1)/(a+b+2);
    # otherwise use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def beta_quantile(q: float, a: float, b: float) -> float:
    """Inverse Beta(a, b) CDF by bisection on the regularized beta."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    if q == 0.0:
        return 0.0
    if q == 1.0:
        return 1.0
    lo, hi = 0.0, 1.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if regularized_incomplete_beta(a, b, mid) < q:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-12:
            break
    return 0.5 * (lo + hi)


def clopper_pearson(successes: int, trials: int,
                    alpha: float = 0.05) -> "tuple[float, float]":
    """Exact two-sided (1 - alpha) binomial CI for ``successes/trials``.

    The Clopper–Pearson interval via beta quantiles:
    ``lo = Beta(alpha/2; k, n-k+1)``, ``hi = Beta(1-alpha/2; k+1, n-k)``,
    with the conventional closed forms at k = 0 and k = n.  Exact (never
    under-covers), which is what makes it safe for deterministic
    conformance tests: a true p outside the interval is a real defect,
    not a tolerance artifact.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"need 0 <= successes <= trials, got "
                         f"{successes}/{trials}")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    k, n = successes, trials
    if k == 0:
        lo = 0.0
    else:
        lo = beta_quantile(alpha / 2.0, k, n - k + 1)
    if k == n:
        hi = 1.0
    else:
        hi = beta_quantile(1.0 - alpha / 2.0, k + 1, n - k)
    return lo, hi


#: Upper-tail chi-square critical values by degrees of freedom, for the
#: conformance suite's uniformity checks (standard table values).
_CHI2_CRITICAL = {
    0.05: {1: 3.841, 2: 5.991, 3: 7.815, 4: 9.488, 5: 11.070},
    0.01: {1: 6.635, 2: 9.210, 3: 11.345, 4: 13.277, 5: 15.086},
    0.001: {1: 10.828, 2: 13.816, 3: 16.266, 4: 18.467, 5: 20.515},
}


def chi_square_critical(df: int, alpha: float = 0.001) -> float:
    """Upper-tail chi-square critical value (tabulated small df)."""
    try:
        return _CHI2_CRITICAL[alpha][df]
    except KeyError:
        raise ValueError(
            f"no chi-square table entry for df={df}, alpha={alpha}"
        ) from None


def chi_square_uniform_stat(counts: Sequence[int]) -> float:
    """Pearson chi-square statistic against the uniform distribution.

    Degenerate inputs (fewer than two cells, or no observations at all)
    raise rather than returning 0: a conformance test fed an empty
    histogram should fail loudly, not conclude "perfectly uniform".
    """
    counts = list(counts)
    total = sum(counts)
    if len(counts) < 2 or total == 0:
        raise ValueError(
            f"need >= 2 cells and >= 1 observation, got {counts}")
    expected = total / len(counts)
    return sum((c - expected) ** 2 / expected for c in counts)


__all__ = [
    "mean",
    "sample_variance",
    "population_variance",
    "std_dev",
    "percentile",
    "t_critical_95",
    "confidence_interval_95",
    "regularized_incomplete_beta",
    "beta_quantile",
    "clopper_pearson",
    "chi_square_critical",
    "chi_square_uniform_stat",
]
