"""Plain-text tables for experiment output.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that formatting in one place and dependency-free.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 1000 or magnitude < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


def format_series(
    x_label: str,
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    title: Optional[str] = None,
) -> str:
    """Render an x-column plus one column per named series."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title)


def ratio_improvement(base: float, other: float) -> float:
    """The paper's "X% less" convention: ``(base - other) / other * 100``.

    The paper reports e.g. "236% less than PSM", i.e. PSM consumes 3.36x
    what Rcast does; that convention is ``(base/other - 1) * 100``.
    """
    if other == 0:
        return float("inf")
    return (base / other - 1.0) * 100.0


__all__ = ["format_table", "format_series", "ratio_improvement"]
