"""Exception hierarchy for the Rcast reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while still
letting programming errors (``TypeError`` and friends) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The simulation kernel was driven into an invalid state."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or after the simulation horizon."""


class ConfigurationError(ReproError):
    """A scenario, node stack or protocol was configured inconsistently."""


class ChannelError(ReproError):
    """The radio channel was asked to do something physically meaningless."""


class RoutingError(ReproError):
    """A routing-layer invariant was violated (malformed route, bad index)."""


class MacError(ReproError):
    """A MAC-layer invariant was violated (bad frame, impossible state)."""
