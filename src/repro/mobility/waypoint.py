"""Random waypoint mobility (the paper's model).

Each node repeats: pick a uniform destination in the arena, travel to it in a
straight line at a speed drawn uniformly from ``(min_speed, max_speed]``,
then pause for ``pause_time`` seconds.  Positions at an arbitrary time are
computed analytically by advancing each node's per-leg state lazily, so the
model costs O(legs), not O(ticks).

A pause time equal to (or exceeding) the simulated duration yields the
paper's "static scenario" (T_pause = 1125 s): nodes never complete their
first pause.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.errors import ConfigurationError
from repro.mobility.base import Arena, MobilityModel
from repro.sim.rng import RngRegistry


@dataclass
class _Leg:
    """One travel-then-pause segment of a node's trajectory."""

    start_time: float
    start_x: float
    start_y: float
    dest_x: float
    dest_y: float
    speed: float
    pause: float

    @property
    def travel_time(self) -> float:
        """Seconds spent moving on this leg."""
        dist = float(np.hypot(self.dest_x - self.start_x, self.dest_y - self.start_y))
        if self.speed <= 0:
            return float("inf")
        return dist / self.speed

    @property
    def end_time(self) -> float:
        """Time at which the node leaves for its *next* destination."""
        return self.start_time + self.travel_time + self.pause

    def position_at(self, time: float) -> Tuple[float, float]:
        """Position during this leg (valid for start_time <= time <= end_time)."""
        elapsed = time - self.start_time
        travel = self.travel_time
        if elapsed >= travel:
            return (self.dest_x, self.dest_y)
        frac = elapsed / travel if travel > 0 else 1.0
        return (
            self.start_x + frac * (self.dest_x - self.start_x),
            self.start_y + frac * (self.dest_y - self.start_y),
        )


class RandomWaypoint(MobilityModel):
    """Random waypoint model with uniform initial placement.

    Parameters
    ----------
    num_nodes, arena
        Population and area.
    rng
        The ``"mobility"`` stream of a :class:`~repro.sim.rng.RngRegistry`
        (or any ``random.Random``).
    max_speed, min_speed
        Speed is drawn uniformly from ``(min_speed, max_speed]``.  A small
        positive default ``min_speed`` avoids the well-known speed-decay
        pathology of the classic model (nodes stuck at near-zero speed).
    pause_time
        Seconds spent stationary at each waypoint.
    """

    def __init__(
        self,
        num_nodes: int,
        arena: Arena,
        rng: random.Random,
        max_speed: float,
        min_speed: float = 0.1,
        pause_time: float = 0.0,
    ) -> None:
        super().__init__(num_nodes, arena)
        if max_speed <= 0:
            raise ConfigurationError(f"max_speed must be positive, got {max_speed}")
        if not 0 <= min_speed <= max_speed:
            raise ConfigurationError(
                f"need 0 <= min_speed <= max_speed, got {min_speed}, {max_speed}"
            )
        if pause_time < 0:
            raise ConfigurationError(f"pause_time must be >= 0, got {pause_time}")
        self._rng = rng
        self.max_speed = max_speed
        self.min_speed = min_speed
        self.pause_time = pause_time
        self._legs: List[_Leg] = [self._initial_leg() for _ in range(num_nodes)]
        self._last_query = 0.0

    @classmethod
    def from_registry(
        cls,
        num_nodes: int,
        arena: Arena,
        rngs: RngRegistry,
        max_speed: float,
        min_speed: float = 0.1,
        pause_time: float = 0.0,
    ) -> "RandomWaypoint":
        """Construct using the registry's ``"mobility"`` stream."""
        # Shares build_network's "mobility" stream name on purpose: this
        # constructor replaces build_mobility for bench/standalone runs, so
        # the same registry name keeps those runs on the identical mobility
        # sequence; the two call paths never run against one registry.
        return cls(num_nodes, arena,
                   rngs.stream("mobility"),  # rcast-lint: disable=R007 -- intentional shared name, exclusive call paths
                   max_speed, min_speed, pause_time)

    # ------------------------------------------------------------------

    def _random_point(self) -> Tuple[float, float]:
        return (
            self._rng.uniform(0.0, self.arena.width),
            self._rng.uniform(0.0, self.arena.height),
        )

    def _random_speed(self) -> float:
        lo = max(self.min_speed, 1e-6)
        return self._rng.uniform(lo, self.max_speed)

    def _initial_leg(self) -> _Leg:
        x, y = self._random_point()
        dx, dy = self._random_point()
        return _Leg(0.0, x, y, dx, dy, self._random_speed(), self.pause_time)

    def _next_leg(self, prev: _Leg) -> _Leg:
        dx, dy = self._random_point()
        return _Leg(
            prev.end_time, prev.dest_x, prev.dest_y, dx, dy,
            self._random_speed(), self.pause_time,
        )

    def _advance(self, node: int, time: float) -> _Leg:
        leg = self._legs[node]
        while leg.end_time < time:
            leg = self._next_leg(leg)
            self._legs[node] = leg
        return leg

    # ------------------------------------------------------------------

    def positions_at(self, time: float) -> NDArray[np.float64]:
        """All node positions at ``time`` (forward-only queries)."""
        if time < self._last_query - 1e-9:
            raise ConfigurationError(
                f"RandomWaypoint queried backwards in time "
                f"({time} < {self._last_query})"
            )
        self._last_query = max(self._last_query, time)
        out = np.empty((self.num_nodes, 2), dtype=float)
        for node in range(self.num_nodes):
            leg = self._advance(node, time)
            out[node, 0], out[node, 1] = leg.position_at(time)
        return out

    def position_of(self, node: int, time: float) -> Tuple[float, float]:
        """Position of one node at ``time``."""
        leg = self._advance(node, time)
        return leg.position_at(time)

    def velocity_of(self, node: int, time: float) -> Tuple[float, float]:
        """Instantaneous velocity vector of ``node`` at ``time``."""
        leg = self._advance(node, time)
        if time - leg.start_time >= leg.travel_time:
            return (0.0, 0.0)  # pausing
        dist = float(np.hypot(leg.dest_x - leg.start_x, leg.dest_y - leg.start_y))
        if dist == 0:
            return (0.0, 0.0)
        ux = (leg.dest_x - leg.start_x) / dist
        uy = (leg.dest_y - leg.start_y) / dist
        return (ux * leg.speed, uy * leg.speed)


__all__ = ["RandomWaypoint"]
