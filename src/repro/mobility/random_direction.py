"""Random direction mobility model (extension / robustness checks).

Unlike random waypoint, nodes travel to the arena *boundary* in a uniformly
random direction, pause, then pick a fresh direction.  This avoids the
center-density bias of random waypoint and is used by the ablation studies to
check that Rcast's gains are not an artifact of the mobility model.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.errors import ConfigurationError
from repro.mobility.base import Arena, MobilityModel


@dataclass
class _Segment:
    start_time: float
    start_x: float
    start_y: float
    dest_x: float
    dest_y: float
    speed: float
    pause: float

    @property
    def travel_time(self) -> float:
        """Seconds spent moving on this segment."""
        dist = math.hypot(self.dest_x - self.start_x, self.dest_y - self.start_y)
        return dist / self.speed if self.speed > 0 else float("inf")

    @property
    def end_time(self) -> float:
        """Time at which the node departs for its next segment."""
        return self.start_time + self.travel_time + self.pause

    def position_at(self, time: float) -> Tuple[float, float]:
        """Position on this segment at ``time``."""
        elapsed = time - self.start_time
        travel = self.travel_time
        if elapsed >= travel:
            return (self.dest_x, self.dest_y)
        frac = elapsed / travel if travel > 0 else 1.0
        return (
            self.start_x + frac * (self.dest_x - self.start_x),
            self.start_y + frac * (self.dest_y - self.start_y),
        )


def _ray_to_boundary(x: float, y: float, angle: float,
                     arena: Arena) -> Tuple[float, float]:
    """First intersection of the ray from (x, y) at ``angle`` with the walls."""
    dx, dy = math.cos(angle), math.sin(angle)
    best_t = float("inf")
    if dx > 1e-12:
        best_t = min(best_t, (arena.width - x) / dx)
    elif dx < -1e-12:
        best_t = min(best_t, -x / dx)
    if dy > 1e-12:
        best_t = min(best_t, (arena.height - y) / dy)
    elif dy < -1e-12:
        best_t = min(best_t, -y / dy)
    if not math.isfinite(best_t) or best_t < 0:
        return (x, y)
    return arena.clamp(x + best_t * dx, y + best_t * dy)


class RandomDirection(MobilityModel):
    """Travel to the boundary in a random direction, pause, repeat."""

    def __init__(
        self,
        num_nodes: int,
        arena: Arena,
        rng: random.Random,
        max_speed: float,
        min_speed: float = 0.1,
        pause_time: float = 0.0,
    ) -> None:
        super().__init__(num_nodes, arena)
        if max_speed <= 0:
            raise ConfigurationError(f"max_speed must be positive, got {max_speed}")
        self._rng = rng
        self.max_speed = max_speed
        self.min_speed = max(min_speed, 1e-6)
        self.pause_time = pause_time
        self._segments: List[_Segment] = [self._initial_segment() for _ in range(num_nodes)]
        self._last_query = 0.0

    def _initial_segment(self) -> _Segment:
        x = self._rng.uniform(0.0, self.arena.width)
        y = self._rng.uniform(0.0, self.arena.height)
        return self._fresh_segment(0.0, x, y)

    def _fresh_segment(self, start_time: float, x: float, y: float) -> _Segment:
        angle = self._rng.uniform(0.0, 2 * math.pi)
        dest = _ray_to_boundary(x, y, angle, self.arena)
        speed = self._rng.uniform(self.min_speed, self.max_speed)
        return _Segment(start_time, x, y, dest[0], dest[1], speed, self.pause_time)

    def _advance(self, node: int, time: float) -> _Segment:
        seg = self._segments[node]
        while seg.end_time < time:
            seg = self._fresh_segment(seg.end_time, seg.dest_x, seg.dest_y)
            self._segments[node] = seg
        return seg

    def positions_at(self, time: float) -> NDArray[np.float64]:
        """All node positions at ``time`` (forward-only queries)."""
        if time < self._last_query - 1e-9:
            raise ConfigurationError("RandomDirection queried backwards in time")
        self._last_query = max(self._last_query, time)
        out = np.empty((self.num_nodes, 2), dtype=float)
        for node in range(self.num_nodes):
            seg = self._advance(node, time)
            out[node, 0], out[node, 1] = seg.position_at(time)
        return out

    def position_of(self, node: int, time: float) -> Tuple[float, float]:
        """Position of one node at ``time``."""
        return self._advance(node, time).position_at(time)


__all__ = ["RandomDirection"]
