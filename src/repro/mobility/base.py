"""Mobility model interface and the rectangular arena."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from numpy.typing import NDArray

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Arena:
    """Rectangular simulation area with corners (0, 0) and (width, height)."""

    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError(
                f"arena dimensions must be positive, got {self.width} x {self.height}"
            )

    def contains(self, x: float, y: float, tol: float = 1e-9) -> bool:
        """True when (x, y) lies inside the arena (with tolerance)."""
        return -tol <= x <= self.width + tol and -tol <= y <= self.height + tol

    def clamp(self, x: float, y: float) -> Tuple[float, float]:
        """Project (x, y) onto the arena."""
        return (min(max(x, 0.0), self.width), min(max(y, 0.0), self.height))

    @property
    def diagonal(self) -> float:
        """Length of the arena diagonal (an upper bound on any leg length)."""
        return float(np.hypot(self.width, self.height))


class MobilityModel:
    """Interface: positions of ``num_nodes`` nodes as a function of time.

    Implementations must be *functional in time*: ``positions_at(t)`` may be
    called for any non-decreasing sequence of times and must be consistent
    (the same ``t`` always yields the same positions).  Querying strictly
    backwards in time is not required to work.
    """

    def __init__(self, num_nodes: int, arena: Arena) -> None:
        if num_nodes <= 0:
            raise ConfigurationError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = num_nodes
        self.arena = arena

    def positions_at(self, time: float) -> NDArray[np.float64]:
        """Return an ``(num_nodes, 2)`` float array of positions at ``time``."""
        raise NotImplementedError

    def position_of(self, node: int, time: float) -> Tuple[float, float]:
        """Return the position of one node at ``time``."""
        pos = self.positions_at(time)
        return (float(pos[node, 0]), float(pos[node, 1]))


__all__ = ["Arena", "MobilityModel"]
