"""Position service: cached positions and neighbor queries.

Protocol layers never talk to mobility models directly; they ask the
:class:`PositionService`, which

* snapshots all node positions at most once per ``refresh`` seconds of
  virtual time,
* derives the symmetric neighbor relation ``dist <= tx_range`` from each
  snapshot using a uniform spatial grid (cell size = carrier-sense range),
  so only nodes in adjacent cells are ever compared — sub-quadratic for
  arenas larger than a few cells, never worse than the dense product, and
* exposes the per-node neighbor count that Rcast's ``P_R = 1/n`` uses and a
  link-change rate estimate used by the mobility decision factor.

The refresh period (default 1 s) trades fidelity for speed: a node moving at
the paper's maximum 20 m/s covers 20 m between snapshots, well under the
250 m radio range, so the neighbor relation is accurate to a few percent of
the range.

Snapshot caching contract (the simulator hot path depends on it):

* :meth:`neighbors` / :meth:`cs_neighbors` return **interned frozensets**
  built once per refresh — repeated queries between refreshes return the
  *same object*, and a refresh that leaves a node's neighborhood unchanged
  keeps the old object too (static topologies never re-allocate).
* :meth:`sorted_neighbors` returns the same relation as an ascending
  tuple, precomputed per refresh — callers that need deterministic
  iteration order (the channel's audible snapshot, SPAN's pair scans) get
  it without a per-call ``tuple(sorted(...))``.
* Link-change accounting walks the old and new sorted index tuples with a
  two-pointer merge instead of ``set.symmetric_difference``.

Determinism note: membership is decided on squared distances
(``d² <= range²``) computed with identical elementwise operations in every
grid block, so the relation is a pure function of the snapshot positions —
independent of cell shape, block iteration order, or node numbering.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.constants import NEIGHBOR_REFRESH_S, TX_RANGE_M
from repro.errors import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.sim.engine import Simulator


def _count_changes(old: Tuple[int, ...], new: Tuple[int, ...]) -> int:
    """Size of the symmetric difference of two ascending index tuples."""
    i = j = common = 0
    len_old, len_new = len(old), len(new)
    while i < len_old and j < len_new:
        a, b = old[i], new[j]
        if a == b:
            common += 1
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return len_old + len_new - 2 * common


class PositionService:
    """Time-cached positions and allocation-free neighbor lookups."""

    def __init__(
        self,
        sim: Simulator,
        model: MobilityModel,
        tx_range: float = TX_RANGE_M,
        cs_range: Optional[float] = None,
        refresh: float = NEIGHBOR_REFRESH_S,
    ) -> None:
        if tx_range <= 0:
            raise ConfigurationError(f"tx_range must be positive, got {tx_range}")
        if refresh <= 0:
            raise ConfigurationError(f"refresh must be positive, got {refresh}")
        self._sim = sim
        self._model = model
        self.tx_range = tx_range
        self.cs_range = cs_range if cs_range is not None else tx_range
        if self.cs_range < tx_range:
            raise ConfigurationError("carrier-sense range must be >= tx range")
        self.refresh = refresh
        self.num_nodes = model.num_nodes
        self._snapshot_time = -1.0
        #: first virtual time at which the current snapshot is stale
        self._valid_until = -1.0
        self._positions: NDArray[np.float64] = np.zeros((self.num_nodes, 2))
        empty_tuple: Tuple[int, ...] = ()
        empty_set: FrozenSet[int] = frozenset()
        empty_idx: NDArray[np.int64] = np.empty(0, dtype=np.int64)
        self._neighbor_tuples: List[Tuple[int, ...]] = (
            [empty_tuple] * self.num_nodes)
        self._cs_tuples: List[Tuple[int, ...]] = [empty_tuple] * self.num_nodes
        self._neighbor_sets: List[FrozenSet[int]] = [empty_set] * self.num_nodes
        self._cs_sets: List[FrozenSet[int]] = [empty_set] * self.num_nodes
        #: int64 views of the same ascending relations, interned alongside
        #: the tuples — the channel fancy-indexes its radio-state mirrors
        #: with these, so they must only be reallocated when membership
        #: actually changes (callers hold on to the returned object).
        self._neighbor_arrays: List[NDArray[np.int64]] = (
            [empty_idx] * self.num_nodes)
        self._cs_arrays: List[NDArray[np.int64]] = [empty_idx] * self.num_nodes
        #: cumulative count of neighbor-set changes observed per node,
        #: feeding the mobility decision factor.
        self.link_changes: NDArray[np.int64] = np.zeros(self.num_nodes,
                                                        dtype=np.int64)
        self._bootstrapped = False
        #: callbacks fired at the end of every snapshot refresh — for
        #: subsystems keeping incremental state derived from the interned
        #: neighbor sets (the channel's per-waiter busy counts).  Listeners
        #: run after all interning completes and may query this service
        #: (the fresh snapshot is already valid, so no reentrant refresh).
        self._refresh_listeners: List[Callable[[], None]] = []
        self._refresh_now(force=True)

    def add_refresh_listener(self, listener: Callable[[], None]) -> None:
        """Register ``listener`` to run after every snapshot refresh."""
        self._refresh_listeners.append(listener)

    def ensure_fresh(self) -> None:
        """Refresh the snapshot if stale (same trigger as any query)."""
        if self._sim.now >= self._valid_until:
            self._refresh_now()

    # ------------------------------------------------------------------
    # Snapshot maintenance
    # ------------------------------------------------------------------

    def _refresh_now(self, force: bool = False) -> None:
        now = self._sim.now
        if not force and now < self._valid_until:
            return
        self._snapshot_time = now
        self._valid_until = now + self.refresh
        positions = self._model.positions_at(now)
        self._positions = positions
        num_nodes = self.num_nodes

        # Bin nodes into a uniform grid of cs_range-sized cells.  A node's
        # carrier-sense disc is then fully covered by its own cell plus the
        # eight adjacent ones, so those are the only candidates compared.
        cells = np.floor(positions * (1.0 / self.cs_range)).astype(np.int64)
        col = cells[:, 0].tolist()
        row = cells[:, 1].tolist()
        buckets: Dict[Tuple[int, int], List[int]] = {}
        for node in range(num_nodes):
            buckets.setdefault((col[node], row[node]), []).append(node)

        tx_sq = self.tx_range * self.tx_range
        cs_sq = self.cs_range * self.cs_range
        new_tx: List[Tuple[int, ...]] = [()] * num_nodes
        new_cs: List[Tuple[int, ...]] = [()] * num_nodes
        for (cx, cy), members in buckets.items():
            candidates: List[int] = []
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    block = buckets.get((cx + dx, cy + dy))
                    if block is not None:
                        candidates.extend(block)
            # Ascending candidate ids make every derived neighbor tuple
            # ascending too (a load-bearing invariant: delivery iterates
            # these tuples directly).
            candidates.sort()
            cand = np.asarray(candidates, dtype=np.int64)
            rows = np.asarray(members, dtype=np.int64)
            diff = positions[rows][:, None, :] - positions[cand][None, :, :]
            dist_sq = np.einsum("ijk,ijk->ij", diff, diff)
            in_tx = dist_sq <= tx_sq
            in_cs = dist_sq <= cs_sq
            for local, node in enumerate(members):
                not_self = cand != node
                new_tx[node] = tuple(cand[in_tx[local] & not_self].tolist())
                new_cs[node] = tuple(cand[in_cs[local] & not_self].tolist())

        # Interning + link-change accounting.  Only nodes whose membership
        # actually changed get fresh tuple/frozenset objects; everyone else
        # keeps the previous snapshot's objects (zero allocation when the
        # topology is static).
        bootstrapped = self._bootstrapped
        nbr_tuples = self._neighbor_tuples
        nbr_sets = self._neighbor_sets
        nbr_arrays = self._neighbor_arrays
        cs_tuples = self._cs_tuples
        cs_sets = self._cs_sets
        cs_arrays = self._cs_arrays
        link_changes = self.link_changes
        for node in range(num_nodes):
            fresh = new_tx[node]
            old = nbr_tuples[node]
            if fresh != old:
                if bootstrapped:
                    link_changes[node] += _count_changes(old, fresh)
                nbr_tuples[node] = fresh
                nbr_sets[node] = frozenset(fresh)
                nbr_arrays[node] = np.asarray(fresh, dtype=np.int64)
            elif not bootstrapped:
                nbr_sets[node] = frozenset(fresh)
                nbr_arrays[node] = np.asarray(fresh, dtype=np.int64)
            fresh_cs = new_cs[node]
            if fresh_cs != cs_tuples[node]:
                cs_tuples[node] = fresh_cs
                cs_sets[node] = frozenset(fresh_cs)
                cs_arrays[node] = np.asarray(fresh_cs, dtype=np.int64)
            elif not bootstrapped:
                cs_sets[node] = frozenset(fresh_cs)
                cs_arrays[node] = np.asarray(fresh_cs, dtype=np.int64)
        self._bootstrapped = True
        for listener in self._refresh_listeners:
            listener()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def positions(self) -> NDArray[np.float64]:
        """Snapshot of all positions (refreshed if stale)."""
        if self._sim.now >= self._valid_until:
            self._refresh_now()
        return self._positions

    def position_of(self, node: int) -> Tuple[float, float]:
        """Current (cached) position of one node."""
        if self._sim.now >= self._valid_until:
            self._refresh_now()
        return (float(self._positions[node, 0]), float(self._positions[node, 1]))

    def neighbors(self, node: int) -> FrozenSet[int]:
        """Nodes within transmission range of ``node`` (interned)."""
        if self._sim.now >= self._valid_until:
            self._refresh_now()
        return self._neighbor_sets[node]

    def cs_neighbors(self, node: int) -> FrozenSet[int]:
        """Nodes within carrier-sense range of ``node`` (interned)."""
        if self._sim.now >= self._valid_until:
            self._refresh_now()
        return self._cs_sets[node]

    def sorted_neighbors(self, node: int) -> Tuple[int, ...]:
        """Ascending tuple of nodes within transmission range of ``node``.

        The tuple is built once per refresh and shared between callers, so
        iterating it is allocation-free and its order is a stable function
        of the snapshot (node ids ascending) — safe to drive event
        scheduling from.
        """
        if self._sim.now >= self._valid_until:
            self._refresh_now()
        return self._neighbor_tuples[node]

    def neighbor_index_array(self, node: int) -> NDArray[np.int64]:
        """Ascending int64 array of nodes within tx range of ``node``.

        Same interning contract as :meth:`sorted_neighbors`: the array is
        built once per membership change and shared between callers, so it
        must be treated as read-only.
        """
        if self._sim.now >= self._valid_until:
            self._refresh_now()
        return self._neighbor_arrays[node]

    def cs_index_array(self, node: int) -> NDArray[np.int64]:
        """Ascending int64 array of nodes within cs range of ``node``.

        Interned and read-only, like :meth:`neighbor_index_array`.
        """
        if self._sim.now >= self._valid_until:
            self._refresh_now()
        return self._cs_arrays[node]

    def neighbor_count(self, node: int) -> int:
        """Number of radio neighbors (Rcast's ``P_R`` denominator)."""
        if self._sim.now >= self._valid_until:
            self._refresh_now()
        return len(self._neighbor_tuples[node])

    def in_range(self, a: int, b: int) -> bool:
        """True when ``a`` and ``b`` are within transmission range."""
        if self._sim.now >= self._valid_until:
            self._refresh_now()
        return b in self._neighbor_sets[a]

    def in_cs_range(self, a: int, b: int) -> bool:
        """True when ``b`` is within carrier-sense range of ``a``."""
        if self._sim.now >= self._valid_until:
            self._refresh_now()
        return b in self._cs_sets[a]

    def distance(self, a: int, b: int) -> float:
        """Distance between the cached positions of two nodes."""
        if self._sim.now >= self._valid_until:
            self._refresh_now()
        diff = self._positions[a] - self._positions[b]
        return float(np.hypot(diff[0], diff[1]))

    def link_change_rate(self, node: int) -> float:
        """Neighbor-set changes per second observed so far at ``node``."""
        if self._sim.now >= self._valid_until:
            self._refresh_now()
        elapsed = max(self._sim.now, self.refresh)
        return float(self.link_changes[node]) / elapsed


__all__ = ["PositionService"]
