"""Position service: cached positions and neighbor queries.

Protocol layers never talk to mobility models directly; they ask the
:class:`PositionService`, which

* snapshots all node positions at most once per ``refresh`` seconds of
  virtual time (vectorized via numpy),
* derives the symmetric neighbor relation ``dist <= tx_range`` from each
  snapshot, and
* exposes the per-node neighbor count that Rcast's ``P_R = 1/n`` uses and a
  link-change rate estimate used by the mobility decision factor.

The refresh period (default 1 s) trades fidelity for speed: a node moving at
the paper's maximum 20 m/s covers 20 m between snapshots, well under the
250 m radio range, so the neighbor relation is accurate to a few percent of
the range.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.constants import NEIGHBOR_REFRESH_S, TX_RANGE_M
from repro.errors import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.sim.engine import Simulator


class PositionService:
    """Time-cached positions and O(1)-amortized neighbor lookups."""

    def __init__(
        self,
        sim: Simulator,
        model: MobilityModel,
        tx_range: float = TX_RANGE_M,
        cs_range: Optional[float] = None,
        refresh: float = NEIGHBOR_REFRESH_S,
    ) -> None:
        if tx_range <= 0:
            raise ConfigurationError(f"tx_range must be positive, got {tx_range}")
        if refresh <= 0:
            raise ConfigurationError(f"refresh must be positive, got {refresh}")
        self._sim = sim
        self._model = model
        self.tx_range = tx_range
        self.cs_range = cs_range if cs_range is not None else tx_range
        if self.cs_range < tx_range:
            raise ConfigurationError("carrier-sense range must be >= tx range")
        self.refresh = refresh
        self.num_nodes = model.num_nodes
        self._snapshot_time = -1.0
        self._positions: NDArray[np.float64] = np.zeros((self.num_nodes, 2))
        self._neighbors: List[Set[int]] = [set() for _ in range(self.num_nodes)]
        self._cs_neighbors: List[Set[int]] = [set() for _ in range(self.num_nodes)]
        #: cumulative count of neighbor-set changes observed per node,
        #: feeding the mobility decision factor.
        self.link_changes: NDArray[np.int64] = np.zeros(self.num_nodes,
                                                        dtype=np.int64)
        self._bootstrapped = False
        self._refresh_now(force=True)

    # ------------------------------------------------------------------
    # Snapshot maintenance
    # ------------------------------------------------------------------

    def _refresh_now(self, force: bool = False) -> None:
        now = self._sim.now
        if not force and now - self._snapshot_time < self.refresh:
            return
        self._snapshot_time = now
        self._positions = self._model.positions_at(now)
        diff = self._positions[:, None, :] - self._positions[None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        np.fill_diagonal(dist, np.inf)
        in_tx = dist <= self.tx_range
        in_cs = dist <= self.cs_range
        for node in range(self.num_nodes):
            new_neighbors = set(np.nonzero(in_tx[node])[0].tolist())
            if self._bootstrapped:
                changed = len(
                    new_neighbors.symmetric_difference(self._neighbors[node])
                )
                if changed:
                    self.link_changes[node] += changed
            self._neighbors[node] = new_neighbors
            self._cs_neighbors[node] = set(np.nonzero(in_cs[node])[0].tolist())
        self._bootstrapped = True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def positions(self) -> NDArray[np.float64]:
        """Snapshot of all positions (refreshed if stale)."""
        self._refresh_now()
        return self._positions

    def position_of(self, node: int) -> Tuple[float, float]:
        """Current (cached) position of one node."""
        self._refresh_now()
        return (float(self._positions[node, 0]), float(self._positions[node, 1]))

    def neighbors(self, node: int) -> FrozenSet[int]:
        """Nodes within transmission range of ``node``."""
        self._refresh_now()
        return frozenset(self._neighbors[node])

    def cs_neighbors(self, node: int) -> FrozenSet[int]:
        """Nodes within carrier-sense range of ``node``."""
        self._refresh_now()
        return frozenset(self._cs_neighbors[node])

    def neighbor_count(self, node: int) -> int:
        """Number of radio neighbors (Rcast's ``P_R`` denominator)."""
        self._refresh_now()
        return len(self._neighbors[node])

    def in_range(self, a: int, b: int) -> bool:
        """True when ``a`` and ``b`` are within transmission range."""
        self._refresh_now()
        return b in self._neighbors[a]

    def distance(self, a: int, b: int) -> float:
        """Distance between the cached positions of two nodes."""
        self._refresh_now()
        diff = self._positions[a] - self._positions[b]
        return float(np.hypot(diff[0], diff[1]))

    def link_change_rate(self, node: int) -> float:
        """Neighbor-set changes per second observed so far at ``node``."""
        self._refresh_now()
        elapsed = max(self._sim.now, self.refresh)
        return float(self.link_changes[node]) / elapsed


__all__ = ["PositionService"]
