"""Node mobility models and the position/neighborhood service.

The paper uses the random waypoint model (max speed 20 m/s, pause time 0 to
1125 s) in a 1500 x 300 m arena.  :class:`~repro.mobility.waypoint.RandomWaypoint`
implements it analytically — a node's position at any time is computed from
its current leg, with no per-tick integration.  Additional models
(:class:`~repro.mobility.static.StaticPlacement`,
:class:`~repro.mobility.random_direction.RandomDirection`) support tests and
extension studies.  :class:`~repro.mobility.manager.PositionService` layers
vectorized neighbor queries on top of any model.
"""

from repro.mobility.base import Arena, MobilityModel
from repro.mobility.manager import PositionService
from repro.mobility.random_direction import RandomDirection
from repro.mobility.static import StaticPlacement
from repro.mobility.waypoint import RandomWaypoint

__all__ = [
    "Arena",
    "MobilityModel",
    "PositionService",
    "RandomDirection",
    "RandomWaypoint",
    "StaticPlacement",
]
