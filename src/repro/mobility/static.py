"""Static node placements (tests, topology-controlled experiments)."""

from __future__ import annotations

import random
from typing import Optional, Sequence, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.errors import ConfigurationError
from repro.mobility.base import Arena, MobilityModel


class StaticPlacement(MobilityModel):
    """Nodes that never move.

    Construct either from explicit coordinates or with one of the topology
    helpers (:meth:`line`, :meth:`grid`, :meth:`uniform_random`), which are
    what the integration tests use to pin down multihop behaviour.
    """

    def __init__(self, positions: Sequence[Tuple[float, float]], arena: Arena) -> None:
        coords = np.asarray(positions, dtype=float)
        if coords.ndim != 2 or coords.shape[1] != 2:
            raise ConfigurationError(
                f"positions must be an (n, 2) sequence, got shape {coords.shape}"
            )
        super().__init__(coords.shape[0], arena)
        for x, y in coords:
            if not arena.contains(float(x), float(y)):
                raise ConfigurationError(f"position ({x}, {y}) outside arena")
        self._coords = coords

    # Topology helpers --------------------------------------------------

    @classmethod
    def line(cls, num_nodes: int, spacing: float, arena: Optional[Arena] = None,
             y: Optional[float] = None) -> "StaticPlacement":
        """Nodes on a horizontal line, ``spacing`` meters apart."""
        width = spacing * max(num_nodes - 1, 1) + 1.0
        if arena is None:
            arena = Arena(width, max(10.0, width / 10))
        if y is None:
            y = arena.height / 2
        positions = [(i * spacing, y) for i in range(num_nodes)]
        return cls(positions, arena)

    @classmethod
    def grid(cls, rows: int, cols: int, spacing: float,
             arena: Optional[Arena] = None) -> "StaticPlacement":
        """A ``rows x cols`` grid with the given spacing."""
        if arena is None:
            arena = Arena(
                spacing * max(cols - 1, 1) + 1.0,
                spacing * max(rows - 1, 1) + 1.0,
            )
        positions = [
            (c * spacing, r * spacing) for r in range(rows) for c in range(cols)
        ]
        return cls(positions, arena)

    @classmethod
    def uniform_random(cls, num_nodes: int, arena: Arena,
                       rng: random.Random) -> "StaticPlacement":
        """Uniform random placement (the paper's static scenario start)."""
        positions = [
            (rng.uniform(0.0, arena.width), rng.uniform(0.0, arena.height))
            for _ in range(num_nodes)
        ]
        return cls(positions, arena)

    # MobilityModel interface -------------------------------------------

    def positions_at(self, time: float) -> NDArray[np.float64]:
        """The fixed coordinates (a defensive copy)."""
        return self._coords.copy()

    def position_of(self, node: int, time: float) -> Tuple[float, float]:
        """The fixed position of one node."""
        return (float(self._coords[node, 0]), float(self._coords[node, 1]))

    def velocity_of(self, node: int, time: float) -> Tuple[float, float]:
        """Always zero."""
        return (0.0, 0.0)


__all__ = ["StaticPlacement"]
