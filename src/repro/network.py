"""Network assembly: build a complete simulated MANET for one scheme.

:class:`SimulationConfig` captures everything about a run — scheme, arena,
mobility, traffic, protocol knobs, seed.  :func:`build_network` wires the
full stack (mobility -> position service -> channel -> radios -> MAC ->
DSR -> CBR sources) and :meth:`Network.run` executes it, returning the
:class:`~repro.metrics.collector.RunMetrics` the experiments consume.

Scheme matrix (paper Table 1 plus the naive baseline):

============  ==============  ===============  ============================
key           MAC             power manager    overhearing
============  ==============  ===============  ============================
`ieee80211`   AlwaysOnMac     (always awake)   everything (free)
`psm`         PsmMac          always PS        unconditional
`psm-nooh`    PsmMac          always PS        none
`odpm`        PsmMac          ODPM timers      AM nodes only
`rcast`       PsmMac          always PS        randomized (P_R = 1/n)
`span`        PsmMac          SPAN backbone    AM coordinators only
============  ==============  ===============  ============================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union

from repro import constants
from repro.core.adaptive import (
    OVERHEARING_POLICIES,
    AdaptivePolicy,
    adaptive_run_summary,
    make_policy,
)
from repro.core.policy import (
    NoOverhearing,
    RcastPolicy,
    SenderPolicy,
    UnconditionalOverhearing,
)
from repro.core.rcast import RcastManager
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.mac.base import AlwaysOnMac, MacBase
from repro.mac.epoch import EpochScheduler
from repro.mac.frames import reset_frame_ids
from repro.mac.odpm import OdpmPowerManager
from repro.mac.power import AlwaysPs, PowerManager
from repro.mac.psm import PsmMac
from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.mobility.base import Arena, MobilityModel
from repro.mobility.manager import PositionService
from repro.mobility.random_direction import RandomDirection
from repro.mobility.static import StaticPlacement
from repro.mobility.waypoint import RandomWaypoint
from repro.node import Node
from repro.phy.channel import Channel, reset_tx_ids
from repro.phy.energy import EnergyMeter
from repro.phy.radio import Radio
from repro.routing.dsr.config import DsrConfig
from repro.routing.dsr.protocol import DsrProtocol
from repro.routing.packets import reset_uid_counter
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import NULL_TRACE, TraceSink
from repro.traffic.cbr import CbrSource
from repro.traffic.pairs import choose_connections
from repro.traffic.poisson import PoissonSource

if TYPE_CHECKING:
    from repro.analysis.sanitizer import SanitizerReport
    from repro.mac.span import SpanElection
    from repro.routing.aodv.config import AodvConfig
    from repro.routing.aodv.protocol import AodvProtocol

#: All supported scheme keys.
SCHEMES = ("ieee80211", "psm", "psm-nooh", "odpm", "rcast", "span")


@dataclass
class SimulationConfig:
    """Complete description of one simulation run."""

    scheme: str = "rcast"
    seed: int = 1
    sim_time: float = constants.SIM_TIME_S

    # Topology / PHY
    num_nodes: int = constants.NUM_NODES
    arena_w: float = constants.ARENA_W_M
    arena_h: float = constants.ARENA_H_M
    tx_range: float = constants.TX_RANGE_M
    cs_range: float = constants.CS_RANGE_M
    bitrate: float = constants.BITRATE_BPS
    neighbor_refresh: float = constants.NEIGHBOR_REFRESH_S

    # Mobility
    mobility: str = "waypoint"  # 'waypoint' | 'static' | 'random_direction'
    max_speed: float = constants.MAX_SPEED_MPS
    pause_time: float = 600.0
    #: explicit static coordinates (mobility='static' only); None = uniform
    positions: Optional[Tuple[Tuple[float, float], ...]] = None

    # MAC / PSM
    beacon_interval: float = constants.BEACON_INTERVAL_S
    atim_window: float = constants.ATIM_WINDOW_S
    queue_capacity: int = 64
    #: ATIM-window announcement capacity per node per beacon interval
    max_announcements: int = 8
    #: residual clock-sync error: each PSM node gets a uniform random clock
    #: offset in [0, clock_jitter) seconds (0 = the paper's perfect sync)
    clock_jitter: float = 0.0
    odpm_rrep_timeout: float = constants.ODPM_RREP_TIMEOUT_S
    odpm_data_timeout: float = constants.ODPM_DATA_TIMEOUT_S

    # Traffic
    traffic: str = "cbr"  # 'cbr' | 'poisson' | 'none'
    num_connections: int = constants.NUM_CONNECTIONS
    packet_rate: float = 0.4
    packet_bytes: int = constants.PACKET_BYTES
    traffic_start: float = 1.0
    traffic_stop_guard: float = 10.0

    # Routing
    routing: str = "dsr"  # 'dsr' (paper) | 'aodv' (footnote-1 baseline)
    dsr: DsrConfig = field(default_factory=DsrConfig)
    aodv: Optional["AodvConfig"] = None

    # Rcast options
    rcast_factors: Tuple[str, ...] = ()
    rreq_randomized: bool = False
    opportunistic_tap: bool = False
    #: receiver-side P_R policy: 'fixed' (the paper's 1/n) or one of the
    #: adaptive policies in :mod:`repro.core.adaptive` ('degree',
    #: 'energy', 'bandit').  Only schemes that advertise RANDOMIZED
    #: levels (rcast) consult P_R, but the per-epoch policy machinery
    #: runs on every PSM node when a non-fixed policy is selected.
    overhearing_policy: str = "fixed"

    # Energy
    battery_joules: Optional[float] = None

    # Observability
    #: fold streaming distribution aggregates (delay, energy-per-bit;
    #: :mod:`repro.obs.stream`) during the run.  Off by default; the
    #: shared ``RunMetrics`` fields are bit-identical either way, the
    #: flag only adds the optional ``*_dist`` summaries.
    streaming: bool = False

    # Fault injection
    #: deterministic fault plan for the run; ``None`` (or an empty plan)
    #: builds no injector at all — behaviour is byte-identical to a build
    #: that predates the fault subsystem (golden-trace enforced).  A plain
    #: dict (the plan's JSON form) is accepted and coerced.
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ConfigurationError(
                f"unknown scheme {self.scheme!r}; choose one of {SCHEMES}"
            )
        if self.sim_time <= 0:
            raise ConfigurationError("sim_time must be positive")
        if self.packet_rate <= 0:
            raise ConfigurationError("packet_rate must be positive")
        unknown = set(self.rcast_factors) - {"sender", "mobility", "battery"}
        if unknown:
            raise ConfigurationError(f"unknown rcast factors: {sorted(unknown)}")
        if self.routing not in ("dsr", "aodv"):
            raise ConfigurationError(
                f"unknown routing protocol {self.routing!r}"
            )
        if self.overhearing_policy not in OVERHEARING_POLICIES:
            raise ConfigurationError(
                f"unknown overhearing policy {self.overhearing_policy!r}; "
                f"choose one of {OVERHEARING_POLICIES}"
            )
        if not 0 <= self.clock_jitter < self.beacon_interval:
            raise ConfigurationError(
                "clock_jitter must be in [0, beacon_interval)"
            )
        if isinstance(self.faults, dict):
            self.faults = FaultPlan.from_dict(self.faults)

    def with_scheme(self, scheme: str) -> "SimulationConfig":
        """Copy of this config targeting a different scheme."""
        return replace(self, scheme=scheme)


class Network:
    """A fully wired simulated MANET, ready to run."""

    def __init__(
        self,
        config: SimulationConfig,
        sim: Simulator,
        rngs: RngRegistry,
        positions: PositionService,
        channel: Channel,
        nodes: List[Node],
        metrics: MetricsCollector,
        trace: TraceSink = NULL_TRACE,
    ) -> None:
        self.config = config
        self.sim = sim
        self.rngs = rngs
        self.positions = positions
        self.channel = channel
        self.nodes = nodes
        self.metrics = metrics
        self.trace = trace
        self.span_election: Optional["SpanElection"] = None
        #: wired by :func:`build_network` when the config carries a
        #: non-empty fault plan; ``None`` otherwise
        self.faults: Optional[FaultInjector] = None
        #: filled by :meth:`run` when ``sanitize=True``; ``None`` otherwise
        self.sanitizer_report: Optional["SanitizerReport"] = None
        self._ran = False

    def run(
        self,
        observer: Optional[Callable[["Network"], None]] = None,
        observe_period: Optional[float] = None,
        sanitize: bool = False,
    ) -> RunMetrics:
        """Execute the configured run and return its metrics.

        When ``observer`` is given it is called with this network after
        every ``observe_period`` seconds of virtual time (default: one
        beacon interval), using the engine's restartable ``run()`` — this
        is how :class:`repro.obs.metrics.TimelineRecorder` samples
        per-node state without any hook inside the event loop.

        ``sanitize=True`` runs under the determinism sanitizer
        (:mod:`repro.analysis.sanitizer`): draw ledgers on every registry
        stream, a tie-key detector on the fire interceptor, and hot-path
        order canaries.  Metrics stay byte-identical; the report lands in
        :attr:`sanitizer_report`.
        """
        if self._ran:
            raise ConfigurationError("Network.run() may only be called once")
        self._ran = True
        sanitizer = None
        if sanitize:
            # Imported here: repro.analysis depends on the simulator
            # layers, so a module-level import would be circular.
            from repro.analysis.sanitizer import DeterminismSanitizer

            sanitizer = DeterminismSanitizer()
            sanitizer.attach(self)
        try:
            for node in self.nodes:
                node.start()
            horizon = self.config.sim_time
            if observer is None:
                self.sim.run(until=horizon)
            else:
                period = (observe_period if observe_period
                          else self.config.beacon_interval)
                if period <= 0:
                    raise ConfigurationError(
                        "observe_period must be positive")
                t = 0.0
                while t < horizon:
                    t = min(t + period, horizon)
                    self.sim.run(until=t)
                    observer(self)
            for node in self.nodes:
                node.finalize()
        finally:
            if sanitizer is not None:
                self.sanitizer_report = sanitizer.detach()
        decisions = 0
        elections = 0
        for node in self.nodes:
            if node.rcast is not None:
                decisions += node.rcast.decider.decisions
                elections += node.rcast.decider.overhears
        adaptive_summary = None
        if self.config.overhearing_policy != "fixed":
            policies = [(n.node_id, n.rcast.adaptive) for n in self.nodes
                        if n.rcast is not None and n.rcast.adaptive is not None]
            adaptive_summary = adaptive_run_summary(
                self.config.overhearing_policy, policies,
                lambda i: self.positions.neighbor_count(i),
            )
        return self.metrics.finalize(
            scheme=self.config.scheme,
            sim_time=self.config.sim_time,
            node_energy=[n.radio.meter.energy_joules() for n in self.nodes],
            node_awake_time=[n.radio.meter.awake_time for n in self.nodes],
            events_processed=self.sim.processed_events,
            fault_counts=(self.faults.fault_counts()
                          if self.faults is not None else None),
            overhear_decisions=decisions,
            overhear_elections=elections,
            adaptive=adaptive_summary,
        )


def build_mobility(config: SimulationConfig, rngs: RngRegistry,
                   arena: Arena) -> MobilityModel:
    """Construct the configured mobility model."""
    rng = rngs.stream("mobility")
    if config.mobility == "waypoint":
        return RandomWaypoint(
            config.num_nodes, arena, rng,
            max_speed=config.max_speed, pause_time=config.pause_time,
        )
    if config.mobility == "static":
        if config.positions is not None:
            if len(config.positions) != config.num_nodes:
                raise ConfigurationError(
                    f"{len(config.positions)} positions for "
                    f"{config.num_nodes} nodes"
                )
            return StaticPlacement(list(config.positions), arena)
        return StaticPlacement.uniform_random(config.num_nodes, arena, rng)
    if config.mobility == "random_direction":
        return RandomDirection(
            config.num_nodes, arena, rng,
            max_speed=config.max_speed, pause_time=config.pause_time,
        )
    raise ConfigurationError(f"unknown mobility model {config.mobility!r}")


def _sender_policy(scheme: str) -> SenderPolicy:
    if scheme == "psm":
        return UnconditionalOverhearing()
    if scheme in ("psm-nooh", "odpm", "span"):
        return NoOverhearing()
    return RcastPolicy()  # rcast


def _build_mac(
    config: SimulationConfig,
    sim: Simulator,
    node_id: int,
    channel: Channel,
    radio: Radio,
    positions: PositionService,
    rngs: RngRegistry,
    trace: TraceSink,
    span_election: Optional["SpanElection"] = None,
    epochs: Optional[EpochScheduler] = None,
) -> Tuple[MacBase, Optional[RcastManager]]:
    mac_rng = rngs.stream(f"mac:{node_id}")
    if config.scheme == "ieee80211":
        return AlwaysOnMac(sim, node_id, channel, radio, positions,
                           mac_rng, trace=trace), None
    adaptive: Optional[AdaptivePolicy] = None
    if config.overhearing_policy != "fixed":
        meter = radio.meter
        adaptive = make_policy(
            config.overhearing_policy,
            neighbor_count_fn=lambda: positions.neighbor_count(node_id),
            awake_seconds_fn=meter.awake_seconds,
            remaining_fraction_fn=meter.remaining_fraction,
            beacon_interval=config.beacon_interval,
            rng_factory=lambda: rngs.stream(f"adaptive:{node_id}"),
        )
        assert adaptive is not None
        sim.add_clear_hook(adaptive.reset)
    rcast = RcastManager(
        node_id, sim, positions, rngs.stream(f"rcast:{node_id}"),
        sender_policy=_sender_policy(config.scheme),
        use_sender_recency="sender" in config.rcast_factors,
        use_mobility="mobility" in config.rcast_factors,
        use_battery="battery" in config.rcast_factors,
        energy_meter=radio.meter if "battery" in config.rcast_factors else None,
        randomized_broadcast=config.rreq_randomized,
        adaptive=adaptive,
        trace=trace,
    )
    power: PowerManager
    if config.scheme == "odpm":
        power = OdpmPowerManager(config.odpm_rrep_timeout,
                                 config.odpm_data_timeout,
                                 node_id=node_id, trace=trace)
        tap_in_am = True
    elif config.scheme == "span":
        from repro.mac.span import SpanPowerManager

        assert span_election is not None, "span scheme requires an election"
        power = SpanPowerManager(node_id, span_election)
        tap_in_am = True
    else:
        power = AlwaysPs()
        tap_in_am = False
    mac = PsmMac(
        sim, node_id, channel, radio, positions, mac_rng,
        rcast=rcast, power_manager=power,
        beacon_interval=config.beacon_interval,
        atim_window=config.atim_window,
        queue_capacity=config.queue_capacity,
        max_announcements=config.max_announcements,
        clock_offset=(rngs.stream("clock").uniform(0.0, config.clock_jitter)
                      if config.clock_jitter > 0 else 0.0),
        tap_in_am=tap_in_am,
        opportunistic_tap=config.opportunistic_tap,
        trace=trace,
        epochs=epochs,
    )
    return mac, rcast


def build_network(config: SimulationConfig,
                  trace: TraceSink = NULL_TRACE) -> Network:
    """Wire a complete network for ``config``."""
    # Absolute packet/frame/transmission ids appear in trace output;
    # restarting the process-global counters per build keeps same-seed
    # trace streams byte-identical no matter what ran earlier in-process.
    reset_uid_counter()
    reset_frame_ids()
    reset_tx_ids()
    sim = Simulator()
    rngs = RngRegistry(config.seed)
    arena = Arena(config.arena_w, config.arena_h)
    mobility = build_mobility(config, rngs, arena)
    positions = PositionService(
        sim, mobility,
        tx_range=config.tx_range, cs_range=config.cs_range,
        refresh=config.neighbor_refresh,
    )
    radios: Dict[int, Radio] = {
        i: Radio(sim, i, EnergyMeter(battery_joules=config.battery_joules,
                                     node_id=i, trace=trace))
        for i in range(config.num_nodes)
    }
    channel = Channel(sim, positions, radios, bitrate=config.bitrate, trace=trace)
    metrics = MetricsCollector(config.num_nodes, streaming=config.streaming,
                               seed=config.seed)

    nodes: List[Node] = []
    psm_macs: Dict[int, PsmMac] = {}
    span_election = None
    if config.scheme == "span":
        from repro.mac.span import SpanElection

        span_election = SpanElection(
            sim, positions, rngs.stream("span"),
            energy_meters={i: r.meter for i, r in radios.items()},
        )
        span_election.start()
    # One shared epoch scheduler: all PSM nodes on the same clock grid
    # (the perfectly-synchronized default) share one batched beacon chain.
    # MACs register in ascending node id, fixing the in-batch order.
    epochs = EpochScheduler(sim)
    for i in range(config.num_nodes):
        mac, rcast = _build_mac(config, sim, i, channel, radios[i],
                                positions, rngs, trace,
                                span_election=span_election, epochs=epochs)
        agent: Union[DsrProtocol, "AodvProtocol"]
        if config.routing == "aodv":
            from repro.routing.aodv.config import AodvConfig
            from repro.routing.aodv.protocol import AodvProtocol

            aodv_config = (replace(config.aodv) if config.aodv is not None
                           else AodvConfig())
            agent = AodvProtocol(sim, i, mac, config=aodv_config,
                                 metrics=metrics,
                                 rng=rngs.stream(f"aodv:{i}"), trace=trace)
        else:
            agent = DsrProtocol(sim, i, mac, config=replace(config.dsr),
                                metrics=metrics, rng=rngs.stream(f"dsr:{i}"),
                                trace=trace)
        nodes.append(Node(i, radios[i], mac, agent, rcast))
        if isinstance(mac, PsmMac):
            psm_macs[i] = mac
    for mac in psm_macs.values():
        mac.set_peers(psm_macs)

    _attach_traffic(config, sim, rngs, nodes)
    network = Network(config, sim, rngs, positions, channel, nodes, metrics,
                      trace)
    network.span_election = span_election
    if config.faults is not None and not config.faults.is_empty:
        injector = FaultInjector(
            sim, config.faults, config.seed, nodes, radios, channel,
            positions, tx_range=config.tx_range, sim_time=config.sim_time,
            trace=trace,
        )
        injector.arm()
        channel.faults = injector
        network.faults = injector
    return network


def _attach_traffic(config: SimulationConfig, sim: Simulator,
                    rngs: RngRegistry, nodes: List[Node]) -> None:
    if config.traffic == "none" or config.num_connections == 0:
        return
    pairs = choose_connections(
        config.num_nodes, config.num_connections, rngs.stream("traffic")
    )
    # The guard keeps late packets from skewing PDR, but must never eat
    # more than half of the active window (short test runs).
    window = config.sim_time - config.traffic_start
    stop = config.sim_time - min(config.traffic_stop_guard, window / 2)
    for index, (src, dst) in enumerate(pairs):
        rng = rngs.stream(f"traffic:{index}")
        source: Union[CbrSource, PoissonSource]
        if config.traffic == "cbr":
            source = CbrSource(
                sim, nodes[src].dsr, dst,
                rate_pps=config.packet_rate, packet_bytes=config.packet_bytes,
                start=config.traffic_start, stop=stop, rng=rng,
            )
        elif config.traffic == "poisson":
            source = PoissonSource(
                sim, nodes[src].dsr, dst,
                rate_pps=config.packet_rate, packet_bytes=config.packet_bytes,
                rng=rng, start=config.traffic_start, stop=stop,
            )
        else:
            raise ConfigurationError(f"unknown traffic model {config.traffic!r}")
        nodes[src].sources.append(source)


def run_simulation(config: SimulationConfig,
                   trace: TraceSink = NULL_TRACE) -> RunMetrics:
    """Build and run one simulation; convenience one-liner."""
    return build_network(config, trace).run()


__all__ = [
    "SCHEMES",
    "SimulationConfig",
    "Network",
    "build_network",
    "build_mobility",
    "run_simulation",
]
