"""Typed, serializable fault plans.

A :class:`FaultPlan` is an ordered, immutable collection of typed fault
events describing *what goes wrong* during a run: node crashes (with
optional recovery), premature energy depletion, per-link / per-node packet
loss (Bernoulli and Gilbert-Elliott burst), and ambient noise windows that
shrink the effective reception range.  Plans are pure data:

* **Composable** — ``plan_a + plan_b`` concatenates event lists.
* **Serializable** — :meth:`FaultPlan.to_json` / :meth:`FaultPlan.from_json`
  round-trip through a versioned JSON document, so plans travel in run
  manifests and CLI files (``rcast-repro run --faults plan.json``).
* **Seed-derived** — parametric events (:class:`RandomCrashes`,
  :class:`RandomDepletions`) are expanded at injection time with RNG
  streams derived via :func:`repro.sim.rng.derive_seed` from the *run's*
  seed, so the same plan produces different (but deterministic) concrete
  fault schedules across replications, and the same (config, seed, plan)
  triple is always bit-identical — serial or parallel.

The empty plan is a provable no-op: :func:`repro.network.build_network`
installs no injector for it, leaving every code path (and every RNG
stream) byte-identical to a run with no plan at all.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Tuple,
    Type,
    Union,
)

from repro.errors import ConfigurationError

#: Directed link scope: (sender, receiver) pairs.
LinkScope = Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class NodeCrash:
    """Node ``node`` crashes at ``at`` (optionally recovering later).

    A crash kills the whole stack: the radio drops to the doze state, the
    MAC's pending events are cancelled, and the routing agent stops
    originating or absorbing packets.  With ``recover_at`` set the node
    comes back *cold* — MAC beacon clock restarted on its own offset grid,
    routing caches and discovery state flushed.
    """

    kind: str = field(default="node-crash", init=False)

    node: int
    at: float
    recover_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ConfigurationError(f"crash node must be >= 0, got {self.node}")
        if self.at < 0:
            raise ConfigurationError(f"crash time must be >= 0, got {self.at}")
        if self.recover_at is not None and self.recover_at <= self.at:
            raise ConfigurationError(
                f"recover_at ({self.recover_at}) must be after crash time "
                f"({self.at})"
            )


@dataclass(frozen=True)
class RandomCrashes:
    """Parametric crash schedule: each candidate node crashes i.i.d.

    Every node in ``nodes`` (default: all) crashes with probability
    ``fraction`` at a uniform time in ``[start, stop)``; crashed nodes
    recover ``recover_after`` seconds later when set.  Expansion happens at
    injection time with a seed-derived stream, so each replication of a
    sweep draws its own crash schedule deterministically.
    """

    kind: str = field(default="random-crashes", init=False)

    fraction: float
    start: float
    stop: float
    recover_after: Optional[float] = None
    nodes: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ConfigurationError(
                f"crash fraction must be in [0, 1], got {self.fraction}"
            )
        if self.start < 0 or self.stop < self.start:
            raise ConfigurationError(
                f"need 0 <= start <= stop, got [{self.start}, {self.stop})"
            )
        if self.recover_after is not None and self.recover_after <= 0:
            raise ConfigurationError(
                f"recover_after must be positive, got {self.recover_after}"
            )


@dataclass(frozen=True)
class EnergyDepletion:
    """Node ``node``'s battery dies prematurely at ``at`` (no recovery).

    Behaves like a permanent crash, and additionally closes the node's
    energy book: the meter's battery is marked exhausted so lifetime
    metrics see a genuine depletion rather than a mysterious silence.
    """

    kind: str = field(default="energy-depletion", init=False)

    node: int
    at: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ConfigurationError(
                f"depletion node must be >= 0, got {self.node}"
            )
        if self.at < 0:
            raise ConfigurationError(
                f"depletion time must be >= 0, got {self.at}"
            )


@dataclass(frozen=True)
class RandomDepletions:
    """Parametric depletion schedule (the battery analogue of RandomCrashes)."""

    kind: str = field(default="random-depletions", init=False)

    fraction: float
    start: float
    stop: float
    nodes: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ConfigurationError(
                f"depletion fraction must be in [0, 1], got {self.fraction}"
            )
        if self.start < 0 or self.stop < self.start:
            raise ConfigurationError(
                f"need 0 <= start <= stop, got [{self.start}, {self.stop})"
            )


@dataclass(frozen=True)
class PacketLoss:
    """Bernoulli packet-loss impairment at frame delivery.

    Each otherwise-successful delivery inside ``[start, stop)`` is dropped
    independently with probability ``rate``.  Scope narrows by receiver
    (``nodes``) and/or directed link (``links`` of (sender, receiver)
    pairs); with neither set, every delivery in the window is impaired.
    """

    kind: str = field(default="packet-loss", init=False)

    rate: float
    start: float = 0.0
    stop: Optional[float] = None
    nodes: Optional[Tuple[int, ...]] = None
    links: Optional[LinkScope] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(
                f"loss rate must be in [0, 1], got {self.rate}"
            )
        if self.start < 0:
            raise ConfigurationError(f"start must be >= 0, got {self.start}")
        if self.stop is not None and self.stop < self.start:
            raise ConfigurationError(
                f"need start <= stop, got [{self.start}, {self.stop})"
            )


@dataclass(frozen=True)
class BurstLoss:
    """Gilbert-Elliott two-state burst loss at frame delivery.

    Each scoped link evolves an independent good/bad Markov chain in
    continuous time (exponential sojourns with means ``mean_good`` /
    ``mean_bad`` seconds); deliveries are dropped with probability
    ``loss_good`` in the good state and ``loss_bad`` in the bad state.
    State trajectories are sampled lazily per link from a seed-derived
    stream, so they are deterministic per (seed, plan).
    """

    kind: str = field(default="burst-loss", init=False)

    mean_good: float
    mean_bad: float
    loss_good: float = 0.0
    loss_bad: float = 1.0
    start: float = 0.0
    stop: Optional[float] = None
    nodes: Optional[Tuple[int, ...]] = None
    links: Optional[LinkScope] = None

    def __post_init__(self) -> None:
        if self.mean_good <= 0 or self.mean_bad <= 0:
            raise ConfigurationError(
                "burst-loss sojourn means must be positive, got "
                f"good={self.mean_good} bad={self.mean_bad}"
            )
        for name, p in (("loss_good", self.loss_good),
                        ("loss_bad", self.loss_bad)):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {p}"
                )
        if self.start < 0:
            raise ConfigurationError(f"start must be >= 0, got {self.start}")
        if self.stop is not None and self.stop < self.start:
            raise ConfigurationError(
                f"need start <= stop, got [{self.start}, {self.stop})"
            )


@dataclass(frozen=True)
class NoiseWindow:
    """Ambient noise from ``start`` to ``stop`` shrinks reception range.

    While active, a receiver farther than ``range_factor x tx_range`` from
    the sender cannot decode — the noise floor eats the link margin at the
    range edge.  Overlapping windows compose by taking the smallest factor.
    """

    kind: str = field(default="noise", init=False)

    start: float
    stop: float
    range_factor: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise ConfigurationError(
                f"need 0 <= start < stop, got [{self.start}, {self.stop})"
            )
        if not 0.0 < self.range_factor <= 1.0:
            raise ConfigurationError(
                f"range_factor must be in (0, 1], got {self.range_factor}"
            )


#: Every concrete fault-event type a plan may carry.
FaultEvent = Union[
    NodeCrash,
    RandomCrashes,
    EnergyDepletion,
    RandomDepletions,
    PacketLoss,
    BurstLoss,
    NoiseWindow,
]

_EVENT_TYPES: Dict[str, Type[Any]] = {
    cls.kind: cls
    for cls in (NodeCrash, RandomCrashes, EnergyDepletion, RandomDepletions,
                PacketLoss, BurstLoss, NoiseWindow)
}

#: JSON document version written by :meth:`FaultPlan.to_dict`.
PLAN_FORMAT_VERSION = 1


def _event_to_dict(event: FaultEvent) -> Dict[str, Any]:
    out: Dict[str, Any] = {"kind": event.kind}
    for f in fields(event):
        value = getattr(event, f.name)
        if value is None:
            continue
        if isinstance(value, tuple):
            value = [list(v) if isinstance(v, tuple) else v for v in value]
        out[f.name] = value
    return out


def _event_from_dict(data: Dict[str, Any]) -> FaultEvent:
    if not isinstance(data, dict):
        raise ConfigurationError(f"fault event must be an object, got {data!r}")
    kind = data.get("kind")
    cls = _EVENT_TYPES.get(str(kind))
    if cls is None:
        raise ConfigurationError(
            f"unknown fault event kind {kind!r}; known kinds: "
            f"{sorted(_EVENT_TYPES)}"
        )
    kwargs = {k: v for k, v in data.items() if k != "kind"}
    known = {f.name for f in fields(cls)}
    unknown = set(kwargs) - known
    if unknown:
        raise ConfigurationError(
            f"unknown fields {sorted(unknown)} for fault event kind {kind!r}"
        )
    if "nodes" in kwargs and kwargs["nodes"] is not None:
        kwargs["nodes"] = tuple(int(n) for n in kwargs["nodes"])
    if "links" in kwargs and kwargs["links"] is not None:
        kwargs["links"] = tuple(
            (int(a), int(b)) for a, b in kwargs["links"]
        )
    try:
        event: FaultEvent = cls(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(
            f"invalid fault event {data!r}: {exc}"
        ) from None
    return event


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable collection of fault events."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        # Normalize lists (e.g. from dataclasses.replace callers) to the
        # canonical tuple so frozen equality and hashing behave.
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))

    @property
    def is_empty(self) -> bool:
        """True when the plan schedules nothing (a provable no-op)."""
        return not self.events

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        """Compose two plans by concatenating their event lists."""
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return FaultPlan(self.events + other.events)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Versioned JSON-safe document."""
        return {
            "version": PLAN_FORMAT_VERSION,
            "events": [_event_to_dict(e) for e in self.events],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize to a JSON string (deterministic key order)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Parse a plan document produced by :meth:`to_dict`."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"fault plan must be a JSON object, got {type(data).__name__}"
            )
        version = data.get("version", PLAN_FORMAT_VERSION)
        if version != PLAN_FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported fault-plan version {version!r} "
                f"(this build reads version {PLAN_FORMAT_VERSION})"
            )
        raw_events = data.get("events", [])
        if not isinstance(raw_events, list):
            raise ConfigurationError("fault plan 'events' must be a list")
        return cls(tuple(_event_from_dict(e) for e in raw_events))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from a JSON string."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid fault-plan JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        """Read a plan from a JSON file."""
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read fault plan {path}: {exc}"
            ) from None
        return cls.from_json(text)

    def dump(self, path: Union[str, Path]) -> Path:
        """Write the plan as indented JSON; returns the written path."""
        path = Path(path)
        path.write_text(self.to_json(indent=2) + "\n")
        return path

    # ------------------------------------------------------------------
    # Introspection helpers (used by the injector and tests)
    # ------------------------------------------------------------------

    def select(self, *kinds: str) -> List[FaultEvent]:
        """Events whose ``kind`` is one of ``kinds``, in plan order."""
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]


#: Shared empty plan (the canonical no-op).
EMPTY_PLAN = FaultPlan()


__all__ = [
    "BurstLoss",
    "EMPTY_PLAN",
    "EnergyDepletion",
    "FaultEvent",
    "FaultPlan",
    "LinkScope",
    "NodeCrash",
    "NoiseWindow",
    "PLAN_FORMAT_VERSION",
    "PacketLoss",
    "RandomCrashes",
    "RandomDepletions",
]
