"""Deterministic fault injection (:class:`FaultPlan` + :class:`FaultInjector`).

See :mod:`repro.faults.plan` for the serializable plan vocabulary and
:mod:`repro.faults.injector` for how plans execute against a built network.
"""

from repro.faults.injector import FAULT_CATEGORY, FaultInjector
from repro.faults.plan import (
    EMPTY_PLAN,
    BurstLoss,
    EnergyDepletion,
    FaultEvent,
    FaultPlan,
    NodeCrash,
    NoiseWindow,
    PacketLoss,
    RandomCrashes,
    RandomDepletions,
)

__all__ = [
    "BurstLoss",
    "EMPTY_PLAN",
    "EnergyDepletion",
    "FAULT_CATEGORY",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "NodeCrash",
    "NoiseWindow",
    "PacketLoss",
    "RandomCrashes",
    "RandomDepletions",
]
