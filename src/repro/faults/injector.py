"""Deterministic fault injection for a built network.

The :class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into concrete simulator events and delivery-time decisions:

* **Crashes / depletions** are scheduled as kernel-priority engine events.
  A crash kills the node's whole stack: any in-flight transmission is
  corrupted at every receiver, the MAC is halted (pending DCF attempts and
  the PSM beacon chain cancelled), the routing agent goes down (buffered
  packets dropped, discovery timers cancelled), and the radio drops to the
  doze state.  Recovery brings the node back *cold*: routing caches and
  discovery history flushed, the MAC beacon clock restarted on the node's
  own offset grid at the next boundary.
* **Packet loss** (Bernoulli and Gilbert-Elliott burst) and **noise
  windows** are consulted by the channel at frame delivery through
  :meth:`drop_delivery` — one extra branch per receiver, only wired when
  the plan is non-empty.

Determinism (lint rules R001/R002 apply here as everywhere): every random
decision draws from a named stream derived from the *run's* root seed via
:func:`repro.sim.rng.derived_stream` (``faults:<index>:...``), so the same
(config, seed, plan) triple yields bit-identical fault schedules and drop
sequences — serially, under the process pool, and across platforms.
Parametric events (:class:`~repro.faults.plan.RandomCrashes`) therefore
expand differently per replication for free: replications already run with
derived seeds.

With a ``None`` or empty plan :func:`repro.network.build_network` creates
no injector at all — no extra events, no RNG streams, no per-delivery
branch beyond a predicate that is never true — which is what makes the
empty plan a provable (golden-trace-enforced) no-op.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.faults.plan import (
    BurstLoss,
    EnergyDepletion,
    FaultPlan,
    NodeCrash,
    NoiseWindow,
    PacketLoss,
    RandomCrashes,
    RandomDepletions,
)
from repro.sim.events import PRIORITY_KERNEL
from repro.sim.rng import derive_seed, derived_stream
from repro.sim.trace import NULL_TRACE, TraceSink

if TYPE_CHECKING:
    import random

    from repro.mobility.manager import PositionService
    from repro.node import Node
    from repro.phy.channel import Channel
    from repro.phy.radio import Radio
    from repro.sim.engine import Simulator

#: Trace category used for every fault-subsystem record.
FAULT_CATEGORY = "fault"

#: Counter keys, in the (stable) order they appear in manifests.
_COUNTER_KEYS = (
    "crashes", "recoveries", "depletions",
    "loss_drops", "burst_drops", "noise_drops",
)


class _GilbertElliott:
    """Per-link continuous-time good/bad loss process, advanced lazily.

    Sojourn times in each state are exponential with the rule's means; the
    chain is only sampled when the link is queried, and query times are
    simulator times (monotone non-decreasing), so the trajectory is a pure
    function of the link's derived stream.
    """

    __slots__ = ("rng", "mean_good", "mean_bad", "bad", "until")

    def __init__(self, rng: "random.Random", rule: BurstLoss) -> None:
        self.rng = rng
        self.mean_good = rule.mean_good
        self.mean_bad = rule.mean_bad
        self.bad = False
        self.until = rule.start + rng.expovariate(1.0 / rule.mean_good)

    def drop(self, now: float, loss_good: float, loss_bad: float) -> bool:
        """Advance the chain to ``now`` and draw one loss decision."""
        while self.until <= now:
            self.bad = not self.bad
            mean = self.mean_bad if self.bad else self.mean_good
            self.until += self.rng.expovariate(1.0 / mean)
        p = loss_bad if self.bad else loss_good
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return self.rng.random() < p


class _LossRule:
    """One compiled loss impairment (Bernoulli or burst)."""

    __slots__ = ("event", "index", "seed", "counter", "rng", "links")

    def __init__(self, event: object, index: int, seed: int) -> None:
        self.event = event
        self.index = index
        self.seed = seed
        if isinstance(event, BurstLoss):
            self.counter = "burst_drops"
            self.rng: Optional["random.Random"] = None
            #: (sender, receiver) -> lazily created per-link chain
            self.links: Dict[Tuple[int, int], _GilbertElliott] = {}
        else:
            self.counter = "loss_drops"
            self.rng = derived_stream(seed, f"faults:{index}:loss")
            self.links = {}

    def reset(self) -> None:
        """Restore the rule's initial RNG state (engine clear hook)."""
        self.links.clear()
        if not isinstance(self.event, BurstLoss):
            self.rng = derived_stream(self.seed, f"faults:{self.index}:loss")

    def drop(self, sender: int, receiver: int, now: float) -> bool:
        event = self.event
        assert isinstance(event, (PacketLoss, BurstLoss))
        if now < event.start:
            return False
        if event.stop is not None and now >= event.stop:
            return False
        if event.nodes is not None and receiver not in event.nodes:
            return False
        if event.links is not None and (sender, receiver) not in event.links:
            return False
        if isinstance(event, BurstLoss):
            key = (sender, receiver)
            chain = self.links.get(key)
            if chain is None:
                chain = self.links[key] = _GilbertElliott(
                    derived_stream(
                        self.seed,
                        f"faults:{self.index}:burst:{sender}->{receiver}",
                    ),
                    event,
                )
            return chain.drop(now, event.loss_good, event.loss_bad)
        assert self.rng is not None
        return self.rng.random() < event.rate


class FaultInjector:
    """Executes a non-empty :class:`FaultPlan` against a built network."""

    def __init__(
        self,
        sim: "Simulator",
        plan: FaultPlan,
        seed: int,
        nodes: List["Node"],
        radios: Dict[int, "Radio"],
        channel: "Channel",
        positions: "PositionService",
        tx_range: float,
        sim_time: float,
        trace: TraceSink = NULL_TRACE,
    ) -> None:
        if plan.is_empty:
            raise ConfigurationError(
                "FaultInjector requires a non-empty plan (the empty plan "
                "must stay a no-op: build no injector for it)"
            )
        self.sim = sim
        self.plan = plan
        self.seed = seed
        self.nodes = nodes
        self.radios = radios
        self.channel = channel
        self.positions = positions
        self.tx_range = tx_range
        self.sim_time = sim_time
        self.trace = trace
        self.counts: Dict[str, int] = {k: 0 for k in _COUNTER_KEYS}
        #: nodes currently crashed/depleted
        self._down: Set[int] = set()
        self._noise: List[NoiseWindow] = []
        self._loss_rules: List[_LossRule] = []
        self._armed = False
        #: delivery-veto time envelope, precomputed by :meth:`arm`: the
        #: union span of all noise windows and loss rules.  Outside
        #: ``[veto_from, veto_until)`` no rule can match — and rules only
        #: draw RNG inside their own window — so the channel skips the
        #: per-receiver :meth:`drop_delivery` calls entirely without
        #: changing any draw sequence.  Crash-only plans keep the empty
        #: envelope (``inf``, ``-inf``) and never pay the veto loop.
        self.veto_from = float("inf")
        self.veto_until = float("-inf")

    # ------------------------------------------------------------------
    # Arming: plan -> scheduled events + compiled delivery rules
    # ------------------------------------------------------------------

    def arm(self) -> None:
        """Expand the plan and schedule its timed events (once, at build).

        Parametric events are expanded with streams derived from the run
        seed and the event's plan position, so two events of the same kind
        in one plan draw independently, and the same plan under different
        replication seeds draws fresh (but reproducible) schedules.
        """
        if self._armed:
            raise ConfigurationError("FaultInjector.arm() called twice")
        self._armed = True
        self.sim.add_clear_hook(self.reset)
        num_nodes = len(self.nodes)
        for index, event in enumerate(self.plan.events):
            if isinstance(event, NodeCrash):
                self._check_node(event.node, num_nodes)
                self._schedule_crash(event.node, event.at, event.recover_at,
                                     deplete=False)
            elif isinstance(event, EnergyDepletion):
                self._check_node(event.node, num_nodes)
                self._schedule_crash(event.node, event.at, None, deplete=True)
            elif isinstance(event, (RandomCrashes, RandomDepletions)):
                self._expand_random(event, index, num_nodes)
            elif isinstance(event, NoiseWindow):
                self._noise.append(event)
                self._extend_veto_envelope(event.start, event.stop)
            elif isinstance(event, (PacketLoss, BurstLoss)):
                self._loss_rules.append(_LossRule(event, index, self.seed))
                self._extend_veto_envelope(event.start, event.stop)
            else:  # pragma: no cover - plan types are closed
                raise ConfigurationError(
                    f"unhandled fault event type {type(event).__name__}"
                )

    def _extend_veto_envelope(self, start: float,
                              stop: Optional[float]) -> None:
        """Widen the delivery-veto envelope to cover ``[start, stop)``."""
        if start < self.veto_from:
            self.veto_from = start
        effective_stop = stop if stop is not None else float("inf")
        if effective_stop > self.veto_until:
            self.veto_until = effective_stop

    @staticmethod
    def _check_node(node: int, num_nodes: int) -> None:
        if node >= num_nodes:
            raise ConfigurationError(
                f"fault plan targets node {node} but the network has "
                f"{num_nodes} nodes"
            )

    def _expand_random(self, event: object, index: int,
                       num_nodes: int) -> None:
        assert isinstance(event, (RandomCrashes, RandomDepletions))
        rng = derived_stream(self.seed, f"faults:{index}:{event.kind}")
        candidates = (event.nodes if event.nodes is not None
                      else tuple(range(num_nodes)))
        deplete = isinstance(event, RandomDepletions)
        recover_after = (None if deplete else event.recover_after)
        # Ascending candidate order: the draw sequence (and therefore the
        # expansion) is a pure function of (seed, plan position).
        for node in sorted(candidates):
            self._check_node(node, num_nodes)
            if rng.random() >= event.fraction:
                continue
            at = rng.uniform(event.start, event.stop)
            recover_at = (at + recover_after
                          if recover_after is not None else None)
            self._schedule_crash(node, at, recover_at, deplete=deplete)

    def _schedule_crash(self, node: int, at: float,
                        recover_at: Optional[float], deplete: bool) -> None:
        # Kernel priority: a crash at time t lands before normal protocol
        # events at t, so "crashed at t" means the node did nothing at t.
        self.sim.schedule_at(at, self._crash, node, deplete,
                             priority=PRIORITY_KERNEL)
        if recover_at is not None:
            self.sim.schedule_at(recover_at, self._recover, node,
                                 priority=PRIORITY_KERNEL)

    # ------------------------------------------------------------------
    # Crash / recovery / depletion execution
    # ------------------------------------------------------------------

    def _crash(self, node_id: int, deplete: bool) -> None:
        if node_id in self._down:
            return  # overlapping plans: already down
        self._down.add(node_id)
        now = self.sim.now
        self.counts["depletions" if deplete else "crashes"] += 1
        if self.trace.enabled:
            self.trace.emit(now, FAULT_CATEGORY, node_id,
                            "deplete" if deplete else "crash")
        node = self.nodes[node_id]
        # Truncate an in-flight transmission: the carrier dies mid-frame,
        # so no receiver may decode it.
        tx = self.channel._active.get(node_id)
        if tx is not None:
            tx.corrupt_everywhere()
        node.mac.halt()
        node.dsr.halt()
        radio = self.radios[node_id]
        radio.sleep()
        if deplete:
            meter = radio.meter
            # Close the battery book: whatever the meter says was consumed
            # *is* the whole battery, so ``depleted()`` reports True and
            # lifetime metrics see a genuine exhaustion (a dead battery
            # still leaks at sleep power, hence max with a tiny floor).
            meter.battery_joules = max(meter.energy_joules(now), 1e-12)

    def _recover(self, node_id: int) -> None:
        if node_id not in self._down:
            return  # cleared or never crashed (overlapping plans)
        self._down.discard(node_id)
        self.counts["recoveries"] += 1
        if self.trace.enabled:
            self.trace.emit(self.sim.now, FAULT_CATEGORY, node_id, "recover")
        node = self.nodes[node_id]
        # Cold restart: routing first (so the MAC's first interval serves a
        # clean agent), then the MAC beacon clock.
        node.dsr.reset_cold()
        node.mac.resume()

    def is_down(self, node_id: int) -> bool:
        """True while ``node_id`` is crashed or depleted."""
        return node_id in self._down

    # ------------------------------------------------------------------
    # Delivery-time impairments (called by Channel._finish)
    # ------------------------------------------------------------------

    def drop_delivery(self, sender: int, receiver: int, now: float) -> bool:
        """Should the frame from ``sender`` be lost at ``receiver`` now?

        Checked once per otherwise-successful receiver.  Noise windows are
        evaluated first (pure geometry, no RNG), then loss rules in plan
        order; the first matching rule that draws a drop wins.
        """
        if self._noise:
            factor = 1.0
            for window in self._noise:
                if window.start <= now < window.stop:
                    if window.range_factor < factor:
                        factor = window.range_factor
            if factor < 1.0:
                if (self.positions.distance(sender, receiver)
                        > factor * self.tx_range):
                    self.counts["noise_drops"] += 1
                    if self.trace.enabled:
                        self.trace.emit(now, FAULT_CATEGORY, receiver, "drop",
                                        sender=sender, cause="noise")
                    return True
        for rule in self._loss_rules:
            if rule.drop(sender, receiver, now):
                self.counts[rule.counter] += 1
                if self.trace.enabled:
                    self.trace.emit(
                        now, FAULT_CATEGORY, receiver, "drop",
                        sender=sender,
                        cause="burst" if rule.counter == "burst_drops"
                        else "loss",
                    )
                return True
        return False

    # ------------------------------------------------------------------
    # Accounting / lifecycle
    # ------------------------------------------------------------------

    def fault_counts(self) -> Dict[str, int]:
        """Non-zero fault counters, in stable key order (manifest payload)."""
        return {k: v for k, v in self.counts.items() if v}

    def reset(self) -> None:
        """Restore pre-run fault state (registered as an engine clear hook).

        ``Simulator.clear()`` drops the scheduled crash/recovery events, so
        the matching injector bookkeeping — counters, the down set, and
        every loss rule's RNG position — is restored to its freshly-armed
        state too.  Like the engine's cancelled counters, these describe
        pending-schedule state, not history, so they reset with the queue.
        """
        for key in self.counts:
            self.counts[key] = 0
        self._down.clear()
        for rule in self._loss_rules:
            rule.reset()

    def derive_rule_seed(self, index: int, name: str) -> int:
        """Seed a plan-scoped stream would use (introspection for tests)."""
        return derive_seed(self.seed, f"faults:{index}:{name}")


__all__ = ["FaultInjector", "FAULT_CATEGORY"]
