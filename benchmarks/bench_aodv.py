"""Benchmark: extension — footnote 1, DSR vs AODV under PSM.

Reproduces the paper's contrast case: AODV's control traffic is dominated
by RREQ floods (Das et al.: ~90%), because it cannot harvest routes by
overhearing and expires what it has; DSR's caches quench floods, so its
RREQ share is much lower.
"""

from repro.experiments import aodv_study

from benchmarks.conftest import run_once


def test_aodv_footnote(benchmark, scale, workers):
    result = run_once(benchmark, aodv_study.run, scale, workers=workers)
    print()
    print(aodv_study.format_result(result))

    aodv_share = result.rreq_share_of("aodv", "rcast")
    dsr_share = result.rreq_share_of("dsr", "rcast")
    # The footnote's claim: RREQ dominates AODV's overhead, far beyond DSR.
    assert aodv_share > 0.6, aodv_share
    assert aodv_share > dsr_share
    # Both protocols must remain functional under PSM.
    for agg in result.cells.values():
        assert agg.pdr > 0.80, agg.describe()
