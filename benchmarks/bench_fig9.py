"""Benchmark: Figure 9 — role number vs per-node energy (mobile scenario).

Shape checks: 802.11's energy is role-independent (flat); at the high rate
Rcast's role distribution is tighter than ODPM's (the paper reads max role
~30 vs ~50) and its energy spread is far smaller.
"""

from repro.experiments import fig9

from benchmarks.conftest import run_once


def test_fig9(benchmark, scale, workers):
    result = run_once(benchmark, fig9.run, scale, workers=workers)
    print()
    print(fig9.format_result(result))

    high = result.rates[1]
    odpm = result.panels[("odpm", high)]
    rcast = result.panels[("rcast", high)]
    e80211 = result.panels[("ieee80211", high)]

    # 802.11: all nodes burn the same energy regardless of role.
    assert e80211.energy_variance <= 1.0
    # Rcast balances energy far better than ODPM at high load.
    assert rcast.energy_variance < odpm.energy_variance
    # Forwarding responsibility is no more concentrated under Rcast.
    assert rcast.role_variance <= odpm.role_variance * 1.5
    # Scatter data is exposed for plotting.
    assert len(rcast.scatter_points()) == rcast.roles.shape[0]
