"""Benchmark: extension — the stale-route problem (paper Section 2.1.2).

Audits every route cache against ground-truth connectivity at the end of
a mobile run.  The paper's claim: unconditional overhearing dramatically
aggravates staleness; Rcast's randomization keeps the cache population
(and its rot) smaller.
"""

from repro.experiments import staleness_study

from benchmarks.conftest import run_once


def test_staleness(benchmark, scale, workers):
    result = run_once(benchmark, staleness_study.run, scale, workers=workers)
    print()
    print(staleness_study.format_result(result))

    psm = result.reports["psm"]
    rcast = result.reports["rcast"]
    # Long mobile runs fill every cache to capacity, so entry *counts*
    # equalize; the paper's claim shows up in the freshness of what the
    # caches hold: unconditional overhearing leaves a markedly larger
    # fraction (and number) of stale paths than Rcast's randomization.
    assert psm.stale_fraction > rcast.stale_fraction
    assert psm.stale_entries > rcast.stale_entries
    # And fresher caches route better: Rcast delivers at least as well.
    assert result.pdr["rcast"] >= result.pdr["psm"] - 0.01
