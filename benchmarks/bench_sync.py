"""Benchmark: extension — residual clock-sync error.

Quantifies the paper's perfect-synchronization assumption: error within
one ATIM window is harmless (windows still overlap, ATIM retries succeed);
beyond one window node pairs lose their ATIM exchange and DSR pays
overhead/delay to route around them, but the network stays functional.
"""

from repro.experiments import sync_study

from benchmarks.conftest import run_once


def test_sync_jitter(benchmark, scale, workers):
    result = run_once(benchmark, sync_study.run, scale, workers=workers)
    print()
    print(sync_study.format_result(result))

    perfect = result.cells[0.0]
    # Perfect sync is the paper's operating point: near-lossless.
    assert perfect.pdr > 0.95
    # Error within one ATIM window is free (windows always overlap).
    one_window = result.cells[0.05]
    assert one_window.pdr > perfect.pdr - 0.03
    for jitter, agg in result.cells.items():
        # Even 80%-of-a-beacon error leaves the network functional (DSR
        # routes around the disjoint-window pairs).
        assert agg.pdr > 0.60, (jitter, agg.describe())
    # Beyond one window the error costs routing overhead and delay.
    worst = result.cells[max(result.cells)]
    assert worst.normalized_overhead >= perfect.normalized_overhead
    assert worst.avg_delay >= perfect.avg_delay
