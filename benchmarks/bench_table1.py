"""Benchmark: Table 1 — scheme behaviour comparison, backed by measurement.

Regenerates the paper's qualitative scheme table with measured energy,
variance, PDR, delay and overhead for all five schemes, and verifies the
expected orderings (802.11 most energy / best delay; Rcast least energy and
best balance; ODPM in between with lower delay than Rcast).
"""

from repro.experiments import table1

from benchmarks.conftest import run_once


def test_table1(benchmark, scale, workers):
    result = run_once(benchmark, table1.run, scale, workers=workers)
    print()
    print(table1.format_result(result))
    failed = [label for label, ok in result.checks if not ok]
    assert not failed, f"behaviour expectations violated: {failed}"
