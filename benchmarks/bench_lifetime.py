"""Benchmark: extension — network lifetime under finite batteries.

Quantifies the paper's "increases the network lifetime" claim: with
batteries an always-awake radio drains in 60% of the run, Rcast's first
battery death comes later than ODPM's, which comes later than 802.11's
(every 802.11 battery dies simultaneously and earliest).
"""

from repro.experiments import lifetime

from benchmarks.conftest import run_once


def test_lifetime(benchmark, scale, workers):
    result = run_once(benchmark, lifetime.run, scale, workers=workers)
    print()
    print(lifetime.format_result(result))

    base = result.summaries["ieee80211"]
    odpm = result.summaries["odpm"]
    rcast = result.summaries["rcast"]
    assert base.first_death < odpm.first_death
    assert odpm.first_death < rcast.first_death
    assert rcast.alive_at_end >= odpm.alive_at_end
