"""Benchmark: Figure 6 — variance of per-node energy vs packet rate.

Shape checks: 802.11 variance ~0 at every rate; Rcast's variance below
ODPM's at every rate (the paper reports a 243-400% balance improvement).
"""

from repro.experiments import fig6

from benchmarks.conftest import run_once


def test_fig6(benchmark, scale, workers):
    result = run_once(benchmark, fig6.run, scale, workers=workers)
    print()
    print(fig6.format_result(result))

    for mobile in (True, False):
        label = "mobile" if mobile else "static"
        var = result.variance[mobile]
        assert all(v <= 1.0 for v in var["ieee80211"]), label
        wins = sum(r < o for r, o in zip(var["rcast"], var["odpm"]))
        # Rcast balances better than ODPM at (essentially) every rate.
        assert wins >= len(result.rates) - 1, (label, var)
