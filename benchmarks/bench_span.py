"""Benchmark: extension — SPAN vs Rcast across network density.

Quantifies the paper's related-work critique of SPAN: the coordinator
backbone grows as the network sparsens (toward all-AM in the limit),
while Rcast's overhearing cost is density-insensitive (P_R = 1/n adapts).
"""

from repro.experiments import span_study

from benchmarks.conftest import run_once


def test_span_density(benchmark, scale, workers):
    result = run_once(benchmark, span_study.run, scale, workers=workers)
    print()
    print(span_study.format_result(result))

    factors = sorted(span_study.DENSITY_FACTORS)
    # The backbone grows (in node-fraction terms) as the network sparsens.
    assert result.backbone[factors[-1]] >= result.backbone[factors[0]]
    for factor in factors:
        span = result.cells[("span", factor)]
        rcast = result.cells[("rcast", factor)]
        # Both schemes must keep delivering.
        assert span.pdr > 0.75, (factor, span.describe())
        assert rcast.pdr > 0.75, (factor, rcast.describe())
    # At the sparsest point, SPAN's always-on backbone makes it at least
    # as expensive as Rcast.
    sparsest = factors[-1]
    assert (result.cells[("span", sparsest)].total_energy
            >= 0.9 * result.cells[("rcast", sparsest)].total_energy)
