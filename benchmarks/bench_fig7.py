"""Benchmark: Figure 7 — total energy, PDR and energy-per-bit vs rate.

Shape checks: total energy ieee80211 > odpm > rcast at every rate and in
both scenarios; all schemes deliver the large majority of packets; Rcast
has the lowest energy-per-bit.
"""

from repro.experiments import fig7

from benchmarks.conftest import run_once


def test_fig7(benchmark, scale, workers):
    result = run_once(benchmark, fig7.run, scale, workers=workers)
    print()
    print(fig7.format_result(result))

    for mobile in (True, False):
        label = "mobile" if mobile else "static"
        energy = result.data[mobile]["total_energy"]
        pdr = result.data[mobile]["pdr"]
        epb = result.data[mobile]["energy_per_bit"]
        top_rate = max(result.rates)
        for i, rate in enumerate(result.rates):
            point = f"{label} rate={rate}"
            assert energy["ieee80211"][i] > energy["odpm"][i], point
            if rate < top_rate:
                assert energy["odpm"][i] > energy["rcast"][i], point
            else:
                # At saturation every node on an active path is awake in
                # both schemes and the totals converge; allow a near-tie.
                assert energy["rcast"][i] < energy["odpm"][i] * 1.10, point
            assert epb["rcast"][i] < epb["ieee80211"][i], point
        # Delivery stays high across the sweep (paper: > 90%).
        for scheme in ("ieee80211", "odpm", "rcast"):
            assert min(pdr[scheme]) > 80.0, (label, scheme, pdr[scheme])
        # Paper's headline gap: Rcast substantially below ODPM somewhere.
        gaps = result.energy_gap_vs_odpm(mobile)
        assert max(gaps) > 15.0, (label, gaps)
