"""Benchmark harness: one module per paper table/figure plus extensions.

Run with ``pytest benchmarks/ --benchmark-only``; select fidelity with
``RCAST_BENCH_SCALE`` in {smoke, bench, paper}.
"""
