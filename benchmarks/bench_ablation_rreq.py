"""Benchmark: ablation C — randomized RREQ reception (paper §3.3, §5).

The broadcast-storm extension: RREQ advertisements too can be received by
a random subset of neighbors, with a conservative probability floor so
floods still propagate.  Expectation: energy drops (fewer nodes wake for
broadcast-heavy intervals) while delivery stays high in a dense static
network.
"""

from repro.experiments import ablation

from benchmarks.conftest import run_once


def test_ablation_rreq(benchmark, scale, workers):
    result = run_once(benchmark, ablation.run_rreq, scale, workers=workers)
    print()
    print(ablation.format_result(result))

    every = result.variants["rreq-all"]
    randomized = result.variants["rreq-randomized"]
    # Floored randomization must not break discovery.
    assert randomized.pdr > 0.85, randomized.pdr
    # And should not cost extra energy.
    assert randomized.total_energy <= every.total_energy * 1.1
