"""Benchmark: Figure 8 — average delay and normalized routing overhead.

Shape checks: delay ieee80211 < odpm < rcast (PSM pays ~125 ms per hop,
ODPM's immediate AM transmissions land in between); routing overhead in the
mobile scenario exceeds the static one; Rcast's overhead stays in the same
band as the overhearing-rich schemes (limited overhearing does not break
DSR's routing efficiency).
"""

from repro.experiments import fig8
from repro.metrics.stats import mean

from benchmarks.conftest import run_once


def test_fig8(benchmark, scale, workers):
    result = run_once(benchmark, fig8.run, scale, workers=workers)
    print()
    print(fig8.format_result(result))

    for mobile in (True, False):
        label = "mobile" if mobile else "static"
        delay = result.data[mobile]["avg_delay"]
        for i, rate in enumerate(result.rates):
            point = f"{label} rate={rate}"
            assert delay["ieee80211"][i] < delay["odpm"][i], point
            assert delay["odpm"][i] < delay["rcast"][i], point

    # Mobility costs routing overhead (more breaks, more discovery).
    for scheme in ("ieee80211", "odpm", "rcast"):
        mobile_ovh = mean(result.data[True]["overhead"][scheme])
        static_ovh = mean(result.data[False]["overhead"][scheme])
        assert mobile_ovh > static_ovh * 0.8, (scheme, mobile_ovh, static_ovh)

    # Rcast's overhead stays within a small factor of unconditional 802.11.
    for mobile in (True, False):
        rcast_ovh = mean(result.data[mobile]["overhead"]["rcast"])
        base_ovh = mean(result.data[mobile]["overhead"]["ieee80211"])
        assert rcast_ovh < max(base_ovh * 6.0, base_ovh + 5.0)
