"""Benchmark configuration.

Each benchmark regenerates one table/figure of the paper and prints the
same rows/series the paper reports.  The scale is selected with the
``RCAST_BENCH_SCALE`` environment variable:

* ``smoke`` — minutes-scale sanity sweep (tiny network);
* ``bench`` — the default: the paper's topology and traffic at a shorter
  simulated duration (shape-preserving, laptop-friendly);
* ``paper`` — the full 100-node / 1125 s / 10-repetition setup (hours).

``RCAST_BENCH_WORKERS`` selects the worker-process count for the parallel
execution engine (default 1 = serial; 0 = all cores).  Aggregated results
are bit-identical for any worker count, so the shape assertions are
unaffected by parallelism.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.scenarios import (
    BENCH_SCALE,
    PAPER_SCALE,
    SMOKE_SCALE,
    ExperimentScale,
)

_SCALES = {"smoke": SMOKE_SCALE, "bench": BENCH_SCALE, "paper": PAPER_SCALE}


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The experiment scale selected via RCAST_BENCH_SCALE."""
    name = os.environ.get("RCAST_BENCH_SCALE", "bench").lower()
    if name not in _SCALES:
        raise ValueError(
            f"RCAST_BENCH_SCALE must be one of {sorted(_SCALES)}, got {name!r}"
        )
    return _SCALES[name]


@pytest.fixture(scope="session")
def workers() -> int:
    """Worker-process count selected via RCAST_BENCH_WORKERS (0 = cores)."""
    return int(os.environ.get("RCAST_BENCH_WORKERS", "1"))


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
