"""Benchmark: extension — PSM timing sensitivity (beacon / ATIM sweep).

Validates the trade encoded by the paper's 250 ms / 50 ms choice:
delay grows with the beacon interval, and the network-wide energy floor
grows with the ATIM fraction.
"""

from repro.experiments import sensitivity

from benchmarks.conftest import run_once


def test_sensitivity(benchmark, scale, workers):
    result = run_once(benchmark, sensitivity.run, scale, workers=workers)
    print()
    print(sensitivity.format_result(result))

    beacons = sorted(result.by_beacon)
    delays = [result.by_beacon[b].avg_delay for b in beacons]
    # Delay rises with the beacon interval (~half an interval per hop).
    assert delays[-1] > delays[0]

    fractions = sorted(result.by_fraction)
    energies = [result.by_fraction[f].total_energy for f in fractions]
    # A larger ATIM window raises the always-awake floor.
    assert energies[-1] > energies[0]

    # Delivery survives every sweep point.
    for agg in list(result.by_beacon.values()) + list(result.by_fraction.values()):
        assert agg.pdr > 0.85
