"""Benchmark: hot-path microbenchmarks behind ``rcast-repro bench``.

Unlike the figure benchmarks, these do not reproduce a paper result — they
time the simulator layers the hot-path overhaul targets (snapshot refresh,
neighbor queries, transmit/finish cycles, raw event dispatch) so that
pytest-benchmark's history machinery can track them alongside the figures.
The CI regression gate lives in the ``rcast-repro bench --baseline`` CLI
(see ``benchmarks/baseline_hotpath.json``); these tests only assert that
each stage completes and reports a positive rate.
"""

from repro.obs import bench

from benchmarks.conftest import run_once

# Keep pytest runs quick: one timed pass per stage; best-of-N belongs to
# the CLI harness.
_REPEAT = 1


def test_hotpath_snapshot_refresh(benchmark):
    result = run_once(benchmark, bench.bench_snapshot_refresh, repeat=_REPEAT)
    assert result["refreshes_per_sec"] > 0


def test_hotpath_neighbor_query(benchmark):
    result = run_once(benchmark, bench.bench_neighbor_query, repeat=_REPEAT)
    assert result["queries_per_sec"] > 0


def test_hotpath_transmit_finish(benchmark):
    result = run_once(benchmark, bench.bench_transmit_finish, repeat=_REPEAT)
    assert result["cycles_per_sec"] > 0


def test_hotpath_engine_drain(benchmark):
    result = run_once(benchmark, bench.bench_engine_drain, repeat=_REPEAT)
    assert result["events_per_sec"] > 0


def test_hotpath_workload_smoke(benchmark):
    """End-to-end smoke workload; bench scale is the CLI's job."""
    result = run_once(benchmark, bench.bench_workload, "smoke", repeat=_REPEAT)
    assert result["events"] > 0
    assert result["events_per_sec"] > 0
    assert result["profiler_top"], "profiled pass produced no callbacks"
