"""Benchmark: Figure 5 — per-node energy consumption, sorted ascending.

Four panels (rate x mobility).  Shape checks: 802.11 flat at the maximum;
ODPM's step profile (uninvolved floor vs involved ceiling); Rcast low with
the smallest spread in the static high-rate panel.
"""

import numpy as np

from repro.experiments import fig5

from benchmarks.conftest import run_once


def test_fig5(benchmark, scale, workers):
    result = run_once(benchmark, fig5.run, scale, workers=workers)
    print()
    print(fig5.format_result(result))

    low_rate = result.rates[0]
    for (rate, mobile), curves in result.panels.items():
        label = f"rate={rate} mobile={mobile}"
        e80211 = curves["ieee80211"]
        odpm = curves["odpm"]
        rcast = curves["rcast"]
        # 802.11 is flat at the global maximum.
        assert np.allclose(e80211, e80211[0], rtol=1e-6), label
        assert e80211[0] >= odpm.max() - 1e-6, label
        assert e80211[0] >= rcast.max() - 1e-6, label
        # Rcast's spread (max - min) is tighter than ODPM's step profile.
        assert rcast[-1] - rcast[0] < odpm[-1] - odpm[0], label
        if rate == low_rate:
            # Away from saturation, Rcast's hungriest node consumes less
            # than ODPM's hungriest (at the top rate the involved nodes of
            # both schemes pin to the ceiling and the maxima converge).
            assert rcast[-1] < odpm[-1], label
        else:
            assert rcast[-1] <= odpm[-1] * 1.05, label
