"""Benchmark: ablation A — Rcast's four decision factors (paper §3.2, §5).

Runs Rcast with the neighbor-count base alone (the evaluated system) and
with each optional factor (sender recency, mobility, battery) switched on,
alone and combined.  Checks that every variant remains functional (high
PDR) and reports the energy/balance movement of each factor.
"""

from repro.experiments import ablation

from benchmarks.conftest import run_once


def test_ablation_factors(benchmark, scale, workers):
    result = run_once(benchmark, ablation.run_factors, scale, workers=workers)
    print()
    print(ablation.format_result(result))

    baseline = result.variants["neighbors-only"]
    for name, agg in result.variants.items():
        # Every factor combination must keep the network functional.
        assert agg.pdr > 0.80, (name, agg.pdr)
        # And stay in the same energy regime as the evaluated system
        # (factors modulate overhearing, they must not reintroduce the
        # unconditional-overhearing energy bill).
        assert agg.total_energy < baseline.total_energy * 1.8, name
