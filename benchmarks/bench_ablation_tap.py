"""Benchmark: ablation B — opportunistic tap.

Paper-faithful Rcast only *uses* overheard frames it explicitly elected to
overhear; the opportunistic variant also feeds frames a node happens to
decode while awake for other reasons into DSR (free route information at
zero extra energy, since the radio was on anyway).  Expectation: the same
energy, at-least-as-good routing overhead.
"""

from repro.experiments import ablation

from benchmarks.conftest import run_once


def test_ablation_tap(benchmark, scale, workers):
    result = run_once(benchmark, ablation.run_tap, scale, workers=workers)
    print()
    print(ablation.format_result(result))

    off = result.variants["tap-off"]
    on = result.variants["tap-on"]
    # The tap is energetically (near) free: awake time is decided before
    # any tapping happens.
    assert abs(on.total_energy - off.total_energy) < 0.25 * off.total_energy
    assert on.pdr > 0.85 and off.pdr > 0.85
